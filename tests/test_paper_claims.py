"""Tests pinning down the paper's qualitative claims on small workloads.

These complement the benchmark harness: each test asserts one sentence of the
paper on deterministic inputs, so a regression in any of the mechanisms shows
up as a plain test failure rather than a shifted benchmark number.
"""

import pytest

from repro.bench.generator import GeneratorConfig, generate_ssa_program
from repro.bench.metrics import copy_counts
from repro.outofssa.driver import EngineConfig, destruct_ssa, engine_by_name
from repro.gallery import figure3_swap_problem, figure4_lost_copy_problem


def _quality_config(variant: str) -> EngineConfig:
    return EngineConfig(
        name=f"claim_{variant}", label=variant, coalescing=variant,
        liveness="check", use_interference_graph=False, linear_class_check=False,
    )


def _remaining(function, variant: str) -> int:
    copy = function.copy()
    destruct_ssa(copy, _quality_config(variant))
    return copy_counts(copy).static_copies


@pytest.fixture(scope="module")
def workload():
    return [
        generate_ssa_program(GeneratorConfig(seed=seed + 400, name=f"claim{seed}", size=38))
        for seed in range(6)
    ]


class TestQualityClaims:
    def test_value_based_interference_never_loses_to_intersection(self, workload):
        """§III-A: a more accurate interference notion can only help coalescing."""
        for function in workload + [figure3_swap_problem(), figure4_lost_copy_problem()]:
            assert _remaining(function, "value") <= _remaining(function, "intersect")
            assert _remaining(function, "value") <= _remaining(function, "chaitin")

    def test_virtualization_does_not_change_quality_with_value_interference(self, workload):
        """§IV-D: "with value-based interference, virtualization is equivalent in
        terms of code quality, in other words, inserting all copies first does
        not degrade coalescing" — the per-φ ordering (Us III) and the global
        ordering (Us I) end up within a whisker of each other."""
        total_global = sum(_remaining(function, "value") for function in workload)
        total_per_phi = sum(_remaining(function, "value_is") for function in workload)
        assert abs(total_global - total_per_phi) <= max(2, int(0.05 * total_global))

    def test_sharing_never_hurts(self, workload):
        for function in workload:
            assert _remaining(function, "sharing") <= _remaining(function, "value_is")

    def test_quality_does_not_depend_on_the_engine_plumbing(self, workload):
        """The copies left behind depend on the coalescing strategy, not on
        whether a graph / liveness sets / the linear check are used."""
        engines = [
            engine_by_name("us_i"),
            engine_by_name("us_i_linear_intercheck_livecheck"),
        ]
        for function in workload[:3]:
            counts = set()
            for engine in engines:
                copy = function.copy()
                destruct_ssa(copy, engine)
                counts.add(copy_counts(copy).static_copies)
            assert len(counts) == 1


class TestEfficiencyClaims:
    def test_linear_check_reduces_pairwise_queries(self, workload):
        """§IV-B: the linear class check issues (many) fewer variable-to-variable
        interference queries than the quadratic one."""
        quadratic = linear = 0
        for function in workload:
            base = dict(coalescing="value", liveness="check", use_interference_graph=False)
            quadratic += destruct_ssa(
                function.copy(),
                EngineConfig(name="q", label="q", linear_class_check=False, **base),
            ).stats.pair_queries
            linear += destruct_ssa(
                function.copy(),
                EngineConfig(name="l", label="l", linear_class_check=True, **base),
            ).stats.pair_queries
        assert linear < quadratic

    def test_livecheck_engines_allocate_far_less_analysis_memory(self, workload):
        baseline = fast = 0
        for function in workload:
            baseline += destruct_ssa(
                function.copy(), engine_by_name("sreedhar_iii")
            ).memory_total_bytes
            fast += destruct_ssa(
                function.copy(), engine_by_name("us_i_linear_intercheck_livecheck")
            ).memory_total_bytes
        assert fast * 4 < baseline
