"""Tests for Method I copy insertion (isolation phase) and the naive control."""

import pytest

from repro.interp import run_function
from repro.ir.instructions import Variable
from repro.ir.validate import validate_ssa
from repro.outofssa.method_i import IsolationError, insert_phi_copies
from repro.outofssa.naive import naive_destruction
from repro.ssa.cssa import is_conventional
from repro.gallery import (
    figure1_branch_use,
    figure2_branch_with_decrement,
    figure3_swap_problem,
    figure4_lost_copy_problem,
)
from tests.helpers import GALLERY_PROGRAMS, diamond_function, generated_programs


class TestMethodI:
    @pytest.mark.parametrize("name,maker,args", GALLERY_PROGRAMS)
    def test_lemma1_restores_cssa_and_preserves_semantics(self, name, maker, args):
        function = maker()
        expected = run_function(maker(), args).observable()
        insertion = insert_phi_copies(function)
        validate_ssa(function)
        assert is_conventional(function)
        assert run_function(function, args).observable() == expected
        assert insertion.inserted_copy_count > 0

    def test_lemma1_on_generated_programs(self):
        for function in generated_programs(count=4, size=30):
            expected = run_function(function.copy(), [2, 3]).observable()
            insert_phi_copies(function)
            validate_ssa(function)
            assert is_conventional(function)
            assert run_function(function, [2, 3]).observable() == expected

    def test_copy_counts_per_phi(self):
        function = diamond_function()
        insertion = insert_phi_copies(function)
        # One φ with two arguments: one result copy + two argument copies.
        assert insertion.inserted_copy_count == 3
        assert len(insertion.phi_nodes) == 1
        assert len(insertion.phi_nodes[0]) == 3

    def test_result_copy_in_entry_pcopy_and_args_in_exit_pcopy(self):
        function = diamond_function()
        insert_phi_copies(function)
        join = function.blocks["join"]
        assert join.entry_pcopy is not None and len(join.entry_pcopy) == 1
        assert function.blocks["left"].exit_pcopy is not None
        assert function.blocks["right"].exit_pcopy is not None
        # The φ now only mentions the primed variables.
        phi = join.phis[0]
        primed = set(phi.uses()) | set(phi.defs())
        original = {Variable("a"), Variable("b"), Variable("x")}
        assert primed.isdisjoint(original)

    def test_figure1_copy_lands_before_the_branch(self):
        """The copy for the argument flowing out of B2 must precede the branch
        that uses u, which is exactly why B2's exit parallel copy is used."""
        function = figure1_branch_use()
        insert_phi_copies(function)
        b2 = function.blocks["B2"]
        assert b2.exit_pcopy is not None and len(b2.exit_pcopy) == 1
        # The branch still uses the original u.
        assert Variable("u") in b2.terminator.uses()

    def test_figure2_splits_the_edge(self):
        function = figure2_branch_with_decrement()
        insertion = insert_phi_copies(function, on_branch_def="split")
        assert len(insertion.split_blocks) == 1
        split_label = insertion.split_blocks[0]
        # The copy of the counter lives in the new block, after the decrement.
        split_block = function.blocks[split_label]
        assert split_block.exit_pcopy is not None
        assert Variable("u") in split_block.exit_pcopy.uses()
        assert run_function(function, [4]).observable() == run_function(
            figure2_branch_with_decrement(), [4]
        ).observable()

    def test_figure2_error_mode(self):
        function = figure2_branch_with_decrement()
        with pytest.raises(IsolationError) as excinfo:
            insert_phi_copies(function, on_branch_def="error")
        assert excinfo.value.pred_label == "loop"

    def test_phi_with_constant_argument(self):
        from repro.ir.builder import FunctionBuilder

        fb = FunctionBuilder("constphi", params=("c",))
        entry, left, right, join = fb.blocks("entry", "left", "right", "join")
        with fb.at(entry):
            fb.branch("c", left, right)
        with fb.at(left):
            a = fb.const(5, name="a")
            fb.jump(join)
        with fb.at(right):
            fb.jump(join)
        with fb.at(join):
            fb.phi("x", left=a, right=7)
            fb.print("x")
            fb.ret("x")
        function = fb.finish()
        expected = run_function(function.copy(), [0]).observable()
        insertion = insert_phi_copies(function)
        validate_ssa(function)
        assert run_function(function, [0]).observable() == expected
        # The constant argument produced a constant-source copy.
        assert any(not isinstance(copy.src, Variable) for copy in insertion.copies)


class TestNaiveControl:
    def test_naive_breaks_lost_copy_and_swap(self):
        for maker, args in ((figure4_lost_copy_problem, (6,)), (figure3_swap_problem, (5, 1, 2))):
            expected = run_function(maker(), args).observable()
            broken = naive_destruction(maker())
            assert not broken.has_phis()
            assert run_function(broken, args).observable() != expected

    def test_naive_is_fine_on_conventional_code(self):
        function = diamond_function()
        expected = run_function(diamond_function(), [1]).observable()
        naive = naive_destruction(function)
        assert run_function(naive, [1]).observable() == expected
