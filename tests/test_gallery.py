"""Tests that the gallery programs reproduce the paper's Figures 1-4 claims."""

import pytest

from repro.bench.metrics import copy_counts
from repro.interp import run_function
from repro.ir.instructions import Variable
from repro.ir.validate import validate_ssa
from repro.outofssa.driver import DEFAULT_ENGINE, destruct_ssa
from repro.outofssa.method_i import IsolationError, insert_phi_copies
from repro.outofssa.naive import naive_destruction
from repro.ssa.cssa import conventionality_violations, is_conventional
from repro.gallery import (
    figure1_branch_use,
    figure2_branch_with_decrement,
    figure3_swap_problem,
    figure4_lost_copy_problem,
)


class TestFigure1:
    """Live-out sets are not enough: the copy lands before a branch using u."""

    def test_program_is_valid_non_cssa(self):
        function = figure1_branch_use()
        validate_ssa(function)
        assert not is_conventional(function)

    def test_translation_keeps_the_branch_correct(self):
        for c in (0, 1, 2):
            expected = run_function(figure1_branch_use(), [c]).observable()
            function = figure1_branch_use()
            destruct_ssa(function, DEFAULT_ENGINE)
            assert run_function(function, [c]).observable() == expected

    def test_exactly_one_copy_remains(self):
        function = figure1_branch_use()
        destruct_ssa(function, DEFAULT_ENGINE)
        assert copy_counts(function).static_copies == 1


class TestFigure2:
    """Branch-with-decrement: copy insertion alone cannot isolate the φ."""

    def test_isolation_error_without_edge_splitting(self):
        with pytest.raises(IsolationError):
            insert_phi_copies(figure2_branch_with_decrement(), on_branch_def="error")

    def test_edge_splitting_fallback_is_correct(self):
        for n in (1, 2, 5):
            expected = run_function(figure2_branch_with_decrement(), [n]).observable()
            function = figure2_branch_with_decrement()
            result = destruct_ssa(function, DEFAULT_ENGINE)
            assert result.stats.split_blocks == 1
            assert run_function(function, [n]).observable() == expected

    def test_all_copies_coalesce_after_edge_splitting(self):
        """Once the edge is split (Figure 2(c)) every φ-copy can be coalesced:
        the final code contains no move at all."""
        function = figure2_branch_with_decrement()
        result = destruct_ssa(function, DEFAULT_ENGINE)
        assert result.stats.remaining_copies == 0
        assert copy_counts(function).static_copies == 0
        # The brdec terminator still decrements a single counter variable.
        loop_terminator = function.blocks["loop"].terminator
        assert isinstance(loop_terminator.counter, Variable)


class TestFigure3:
    """The swap problem: one parallel swap, materialised with one extra copy."""

    def test_not_conventional_because_of_the_phi_cycle(self):
        function = figure3_swap_problem()
        violations = conventionality_violations(function)
        assert any({x.name, y.name} == {"a", "b"} for x, y in violations)

    def test_naive_translation_is_wrong(self):
        args = (3, 5, 9)
        expected = run_function(figure3_swap_problem(), args).observable()
        broken = naive_destruction(figure3_swap_problem())
        assert run_function(broken, args).observable() != expected

    def test_swap_costs_three_copies(self):
        function = figure3_swap_problem()
        result = destruct_ssa(function, DEFAULT_ENGINE)
        assert result.stats.remaining_copies == 3
        assert result.stats.sequentialization_temps == 1

    def test_translation_is_correct_for_odd_and_even_iteration_counts(self):
        for n in (2, 3):
            args = (n, 7, 11)
            expected = run_function(figure3_swap_problem(), args).observable()
            function = figure3_swap_problem()
            destruct_ssa(function, DEFAULT_ENGINE)
            assert run_function(function, args).observable() == expected


class TestFigure4:
    """The lost-copy problem: exactly one copy must survive."""

    def test_naive_translation_loses_the_copy(self):
        expected = run_function(figure4_lost_copy_problem(), [5]).observable()
        broken = naive_destruction(figure4_lost_copy_problem())
        assert run_function(broken, [5]).observable() != expected

    def test_one_copy_remains_and_semantics_hold(self):
        for n in (1, 2, 8):
            expected = run_function(figure4_lost_copy_problem(), [n]).observable()
            function = figure4_lost_copy_problem()
            result = destruct_ssa(function, DEFAULT_ENGINE)
            assert result.stats.remaining_copies == 1
            assert run_function(function, [n]).observable() == expected

    def test_every_engine_agrees_on_the_copy_count(self):
        from repro.outofssa.driver import ENGINE_CONFIGURATIONS

        counts = set()
        for config in ENGINE_CONFIGURATIONS:
            function = figure4_lost_copy_problem()
            result = destruct_ssa(function, config)
            counts.add(result.stats.remaining_copies)
        assert counts == {1}
