"""Smoke tests: every example script must run end to end."""

import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name: str, argv=()):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    old_argv = sys.argv
    sys.argv = [path, *argv]
    try:
        runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = old_argv


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "lost_copy_and_swap.py", "paper_figures.py", "jit_pipeline.py"],
)
def test_basic_examples_run(script, capsys):
    run_example(script)
    output = capsys.readouterr().out
    assert "behaviour preserved" in output or "correct" in output


def test_coalescing_quality_example(capsys):
    run_example("coalescing_quality.py", ["--scale", "0.2", "--benchmarks", "181.mcf"])
    output = capsys.readouterr().out
    assert "Intersect" in output and "sum" in output


def test_engine_comparison_example(capsys):
    run_example("engine_comparison.py", ["--scale", "0.2", "--benchmarks", "181.mcf,164.gzip"])
    output = capsys.readouterr().out
    assert "Figure 6" in output and "Figure 7" in output and "speed-up" in output
