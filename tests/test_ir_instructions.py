"""Unit tests for the IR instruction set (defs / uses / rewriting)."""

import pytest

from repro.ir.instructions import (
    Branch,
    BrDec,
    Call,
    Constant,
    Copy,
    Jump,
    Op,
    ParallelCopy,
    Phi,
    Print,
    Return,
    Variable,
)


def var(name: str) -> Variable:
    return Variable(name)


class TestOperands:
    def test_variable_equality_by_name(self):
        assert var("x") == var("x")
        assert var("x") != var("y")
        assert hash(var("x")) == hash(var("x"))

    def test_variable_requires_name(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_constant_equality(self):
        assert Constant(3) == Constant(3)
        assert Constant(3) != Constant(4)
        assert str(Constant(-2)) == "-2"

    def test_int_promoted_to_constant(self):
        instruction = Op(var("x"), "add", [var("a"), 5])
        assert instruction.args[1] == Constant(5)


class TestOp:
    def test_defs_uses_operands(self):
        instruction = Op(var("x"), "add", [var("a"), Constant(1)])
        assert instruction.defs() == [var("x")]
        assert instruction.uses() == [var("a")]
        assert instruction.operands() == [var("a"), Constant(1)]

    def test_replace_uses_and_defs(self):
        instruction = Op(var("x"), "add", [var("a"), var("b")])
        instruction.replace_uses({var("a"): var("z"), var("b"): Constant(7)})
        instruction.replace_defs({var("x"): var("y")})
        assert instruction.args == [var("z"), Constant(7)]
        assert instruction.dst == var("y")


class TestCopy:
    def test_defs_uses(self):
        copy = Copy(var("d"), var("s"))
        assert copy.defs() == [var("d")]
        assert copy.uses() == [var("s")]
        const_copy = Copy(var("d"), 3)
        assert const_copy.uses() == []

    def test_replace(self):
        copy = Copy(var("d"), var("s"))
        copy.replace_uses({var("s"): var("t")})
        copy.replace_defs({var("d"): var("e")})
        assert copy.src == var("t") and copy.dst == var("e")


class TestParallelCopy:
    def test_add_and_duplicate_destination_rejected(self):
        pcopy = ParallelCopy()
        pcopy.add(var("a"), var("x"))
        with pytest.raises(ValueError):
            pcopy.add(var("a"), var("y"))
        assert len(pcopy) == 1

    def test_defs_uses_remove(self):
        pcopy = ParallelCopy([(var("a"), var("x")), (var("b"), 4)])
        assert pcopy.defs() == [var("a"), var("b")]
        assert pcopy.uses() == [var("x")]
        pcopy.remove(var("a"))
        assert pcopy.defs() == [var("b")]
        pcopy.remove(var("b"))
        assert pcopy.is_empty()

    def test_replace(self):
        pcopy = ParallelCopy([(var("a"), var("x"))])
        pcopy.replace_uses({var("x"): var("y")})
        pcopy.replace_defs({var("a"): var("b")})
        assert pcopy.pairs == [(var("b"), var("y"))]


class TestPhi:
    def test_args_keyed_by_predecessor(self):
        phi = Phi(var("x"), {"left": var("a"), "right": 3})
        assert phi.arg_for("left") == var("a")
        assert phi.arg_for("right") == Constant(3)
        assert set(phi.uses()) == {var("a")}
        assert phi.defs() == [var("x")]

    def test_rename_pred(self):
        phi = Phi(var("x"), {"left": var("a")})
        phi.rename_pred("left", "split")
        assert "left" not in phi.args and phi.arg_for("split") == var("a")

    def test_replace(self):
        phi = Phi(var("x"), {"left": var("a")})
        phi.replace_uses({var("a"): var("b")})
        phi.replace_defs({var("x"): var("y")})
        assert phi.arg_for("left") == var("b") and phi.dst == var("y")


class TestCallPrint:
    def test_call_defs_uses(self):
        call = Call(var("r"), "foo", [var("a"), 2])
        assert call.defs() == [var("r")]
        assert call.uses() == [var("a")]
        void = Call(None, "bar", [])
        assert void.defs() == []

    def test_call_replace(self):
        call = Call(var("r"), "foo", [var("a")])
        call.replace_uses({var("a"): Constant(1)})
        call.replace_defs({var("r"): var("s")})
        assert call.args == [Constant(1)] and call.dst == var("s")

    def test_print(self):
        instruction = Print(var("a"))
        assert instruction.uses() == [var("a")]
        instruction.replace_uses({var("a"): Constant(0)})
        assert instruction.uses() == []


class TestTerminators:
    def test_jump(self):
        jump = Jump("next")
        assert jump.targets() == ["next"]
        jump.replace_target("next", "other")
        assert jump.targets() == ["other"]
        assert jump.is_terminator

    def test_branch_uses_condition(self):
        branch = Branch(var("c"), "t", "f")
        assert branch.uses() == [var("c")]
        assert branch.targets() == ["t", "f"]
        branch.replace_target("f", "g")
        assert branch.targets() == ["t", "g"]
        branch.replace_uses({var("c"): var("d")})
        assert branch.cond == var("d")

    def test_br_dec_defines_and_uses_counter(self):
        brdec = BrDec(var("u"), "loop", "exit")
        assert brdec.defs() == [var("u")]
        assert brdec.uses() == [var("u")]
        brdec.replace_defs({var("u"): var("v")})
        assert brdec.counter == var("v")
        with pytest.raises(TypeError):
            brdec.replace_uses({var("v"): Constant(1)})
        with pytest.raises(TypeError):
            BrDec(Constant(1), "a", "b")  # type: ignore[arg-type]

    def test_return(self):
        ret = Return(var("x"))
        assert ret.uses() == [var("x")]
        assert Return(None).uses() == []
        ret.replace_uses({var("x"): Constant(2)})
        assert ret.value == Constant(2)
