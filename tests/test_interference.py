"""Tests for interference definitions and the interference graph."""

import pytest

from repro.interference.definitions import InterferenceKind, make_interference_test
from repro.interference.graph import InterferenceGraph
from repro.ir.instructions import Variable
from repro.liveness.dataflow import LivenessSets
from repro.liveness.intersection import IntersectionOracle
from repro.gallery import figure4_lost_copy_problem
from tests.helpers import generated_programs, straight_line_copies


def v(name: str) -> Variable:
    return Variable(name)


def make_tests(function):
    oracle = IntersectionOracle(function, LivenessSets(function))
    return {
        kind: make_interference_test(function, oracle, kind)
        for kind in InterferenceKind
    }


class TestInterferenceDefinitions:
    def test_paper_example_b_and_c_copies_of_a(self):
        """The §III-A example: b = a; c = a; with a, b, c live simultaneously."""
        function = straight_line_copies()
        tests = make_tests(function)

        # All live ranges intersect pairwise.
        assert tests[InterferenceKind.INTERSECT].interferes(v("a"), v("b"))
        assert tests[InterferenceKind.INTERSECT].interferes(v("a"), v("c"))
        assert tests[InterferenceKind.INTERSECT].interferes(v("b"), v("c"))

        # Chaitin exempts the copies a->b and a->c, but not the pair (b, c).
        chaitin = tests[InterferenceKind.CHAITIN]
        assert not chaitin.interferes(v("a"), v("b"))
        assert not chaitin.interferes(v("a"), v("c"))
        assert chaitin.interferes(v("b"), v("c"))

        # Value-based interference: all three carry the value of a.
        value = tests[InterferenceKind.VALUE]
        assert not value.interferes(v("a"), v("b"))
        assert not value.interferes(v("b"), v("c"))

    def test_lost_copy_phi_result_interferes_with_incremented_value(self):
        function = figure4_lost_copy_problem()
        tests = make_tests(function)
        for kind in InterferenceKind:
            assert tests[kind].interferes(v("x2"), v("x3")), kind

    def test_self_interference_is_false(self):
        function = straight_line_copies()
        tests = make_tests(function)
        for kind in InterferenceKind:
            assert not tests[kind].interferes(v("a"), v("a"))

    def test_value_requires_value_table(self):
        from repro.interference.definitions import InterferenceTest

        function = straight_line_copies()
        oracle = IntersectionOracle(function, LivenessSets(function))
        with pytest.raises(ValueError):
            InterferenceTest(function, oracle, InterferenceKind.VALUE, values=None)


class TestInterferenceGraph:
    def test_edges_and_neighbours(self):
        graph = InterferenceGraph([v("a"), v("b"), v("c")])
        graph.add_edge(v("a"), v("b"))
        assert graph.interferes(v("a"), v("b"))
        assert graph.interferes(v("b"), v("a"))
        assert not graph.interferes(v("a"), v("c"))
        assert graph.neighbours(v("a")) == [v("b")]
        assert graph.edge_count() == 1
        assert len(graph) == 3

    def test_unknown_variables(self):
        graph = InterferenceGraph()
        assert not graph.interferes(v("x"), v("y"))
        graph.add_edge(v("x"), v("y"))          # implicitly added
        assert v("x") in graph and graph.interferes(v("y"), v("x"))

    def test_self_edge_ignored(self):
        graph = InterferenceGraph([v("a")])
        graph.add_edge(v("a"), v("a"))
        assert not graph.interferes(v("a"), v("a"))
        assert graph.edge_count() == 0

    def test_footprint_formula(self):
        assert InterferenceGraph.evaluated_footprint(80) == (80 + 7) // 8 * 80 // 2

    @pytest.mark.parametrize("kind", list(InterferenceKind))
    def test_scan_build_matches_all_pairs_build(self, kind):
        for function in generated_programs(count=3, size=28):
            oracle = IntersectionOracle(function, LivenessSets(function))
            test = make_interference_test(function, oracle, kind)
            universe = function.variables()
            scan = InterferenceGraph.build(function, test, universe)
            reference = InterferenceGraph.build_all_pairs(function, test, universe)
            for i, a in enumerate(universe):
                for b in universe[i + 1:]:
                    assert scan.interferes(a, b) == reference.interferes(a, b), (
                        kind, function.name, str(a), str(b)
                    )

    def test_build_on_paper_example(self):
        function = straight_line_copies()
        oracle = IntersectionOracle(function, LivenessSets(function))
        test = make_interference_test(function, oracle, InterferenceKind.VALUE)
        graph = InterferenceGraph.build(function, test, [v("a"), v("b"), v("c")])
        assert not graph.interferes(v("a"), v("b"))
        assert not graph.interferes(v("b"), v("c"))


# --------------------------------------------------------------------------- backends
class TestInterferenceBackends:
    """The pluggable backend protocol: matrix/query/incremental surfaces."""

    def _oracle(self, function, bitsets=True):
        from repro.liveness.bitsets import BitLivenessSets

        liveness = BitLivenessSets(function) if bitsets else LivenessSets(function)
        return IntersectionOracle(function, liveness)

    def test_matrix_answers_universe_pairs_from_the_matrix(self):
        from repro.interference.graph import MatrixInterference
        from tests.helpers import loop_function

        function = loop_function()
        universe = function.variables()[:3]
        backend = MatrixInterference(
            function, self._oracle(function), InterferenceKind.INTERSECT,
            universe=universe,
        )
        a, b = universe[0], universe[1]
        before = backend.oracle.query_count
        backend.interferes(a, b)
        assert backend.matrix_hits == 1
        assert backend.oracle.query_count == before   # no on-the-fly query

    def test_matrix_falls_back_outside_the_universe(self):
        from repro.interference.graph import MatrixInterference
        from tests.helpers import loop_function

        function = loop_function()
        variables = function.variables()
        backend = MatrixInterference(
            function, self._oracle(function), InterferenceKind.INTERSECT,
            universe=variables[:2],
        )
        outside = variables[-1]
        assert outside not in backend.graph
        before = backend.oracle.query_count
        backend.interferes(variables[0], outside)
        assert backend.oracle.query_count > before    # pairwise query path

    def test_slot_and_adjacency_bits(self):
        graph = InterferenceGraph([v("a"), v("b"), v("c")])
        graph.add_edge(v("a"), v("c"))
        assert graph.slot(v("a")) == 0 and graph.slot(v("c")) == 2
        assert graph.adjacency_bits(v("a")) == 0b100
        assert graph.adjacency_bits(v("c")) == 0b001
        assert graph.adjacency_bits(v("nope")) == 0

    def test_clear_variable_drops_row_and_column(self):
        graph = InterferenceGraph([v("a"), v("b"), v("c")])
        graph.add_edge(v("a"), v("b"))
        graph.add_edge(v("b"), v("c"))
        graph.clear_variable(v("b"))
        assert not graph.interferes(v("a"), v("b"))
        assert not graph.interferes(v("b"), v("c"))
        assert graph.slot(v("b")) is not None         # the slot survives

    def test_incremental_requires_bitset_liveness(self):
        from repro.interference.graph import IncrementalMatrixInterference
        from tests.helpers import loop_function

        function = loop_function()
        with pytest.raises(ValueError, match="bit-set liveness"):
            IncrementalMatrixInterference(
                function, self._oracle(function, bitsets=False),
                InterferenceKind.INTERSECT,
            )

    def test_matrix_bytes_reported(self):
        from repro.interference.base import QueryInterference
        from repro.interference.graph import MatrixInterference
        from tests.helpers import loop_function

        function = loop_function()
        matrix = MatrixInterference(
            function, self._oracle(function), InterferenceKind.INTERSECT
        )
        query = QueryInterference(
            function, self._oracle(function), InterferenceKind.INTERSECT
        )
        assert matrix.matrix_bytes() == matrix.graph.footprint_bytes() > 0
        assert query.matrix_bytes() == 0

    def test_value_kind_still_requires_a_table(self):
        from repro.interference.base import QueryInterference
        from tests.helpers import loop_function

        function = loop_function()
        with pytest.raises(ValueError):
            QueryInterference(
                function, self._oracle(function), InterferenceKind.VALUE, values=None
            )


class TestBackendConfiguration:
    def test_engine_config_normalises_legacy_flag(self):
        from repro.outofssa.config import EngineConfig

        config = EngineConfig(name="x", label="x", use_interference_graph=False)
        assert config.interference == "query"
        config = EngineConfig(name="x", label="x", interference="incremental")
        assert config.use_interference_graph
        with pytest.raises(ValueError, match="unknown interference backend"):
            EngineConfig(name="x", label="x", interference="bogus")

    def test_builder_selects_backends(self):
        from repro.outofssa.config import EngineConfig

        config = EngineConfig.builder("us_i").interference("incremental").build()
        assert config.interference == "incremental"
        assert "incremental" in config.name
        assert EngineConfig.builder("us_i").interference_graph(False).build().interference == "query"
        with pytest.raises(ValueError, match="unknown interference backend"):
            EngineConfig.builder().interference("bogus")

    def test_describe_names_the_backend(self):
        from repro.outofssa.config import EngineConfig, engine_by_name

        assert "interference graph" in engine_by_name("us_i").describe()
        assert "InterCheck" in engine_by_name("us_i_linear_intercheck_livecheck").describe()
        incremental = EngineConfig.builder("us_i").interference("incremental").build()
        assert "incremental interference graph" in incremental.describe()


class TestEditMaintenance:
    def test_apply_edits_resets_dominance_state_on_cfg_changes(self):
        from repro.interference.base import QueryInterference
        from repro.ir.editlog import EditLog
        from repro.liveness.bitsets import BitLivenessSets
        from tests.helpers import diamond_function

        function = diamond_function()
        oracle = IntersectionOracle(function, BitLivenessSets(function))
        backend = QueryInterference(function, oracle, InterferenceKind.INTERSECT)
        variables = function.variables()
        oracle.dominance_order_key(variables[0])
        oracle.dominates(variables[0], variables[1])
        assert oracle._domtree is not None

        # A pure instruction edit keeps the tree, drops only affected keys.
        log = EditLog()
        log.copy_inserted("entry", function.new_variable("p"), variables[0])
        backend.apply_edits(log)
        assert oracle._domtree is not None

        # A split edge shifts the preorder under *every* key: the lazily
        # built tree and all memoized dominance state must go.
        log = EditLog()
        new_block = function.split_edge("entry", "left")
        log.block_split("entry", "left", new_block.label)
        backend.apply_edits(log)
        assert oracle._domtree is None
        assert not oracle._order_keys and not oracle._dominates_memo
        # Rebuilt lazily on the next dominance query, over the new CFG.
        assert oracle.dominance_order_key(variables[0]) is not None
