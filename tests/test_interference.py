"""Tests for interference definitions and the interference graph."""

import pytest

from repro.interference.definitions import InterferenceKind, make_interference_test
from repro.interference.graph import InterferenceGraph
from repro.ir.instructions import Variable
from repro.liveness.dataflow import LivenessSets
from repro.liveness.intersection import IntersectionOracle
from repro.gallery import figure4_lost_copy_problem
from tests.helpers import generated_programs, straight_line_copies


def v(name: str) -> Variable:
    return Variable(name)


def make_tests(function):
    oracle = IntersectionOracle(function, LivenessSets(function))
    return {
        kind: make_interference_test(function, oracle, kind)
        for kind in InterferenceKind
    }


class TestInterferenceDefinitions:
    def test_paper_example_b_and_c_copies_of_a(self):
        """The §III-A example: b = a; c = a; with a, b, c live simultaneously."""
        function = straight_line_copies()
        tests = make_tests(function)

        # All live ranges intersect pairwise.
        assert tests[InterferenceKind.INTERSECT].interferes(v("a"), v("b"))
        assert tests[InterferenceKind.INTERSECT].interferes(v("a"), v("c"))
        assert tests[InterferenceKind.INTERSECT].interferes(v("b"), v("c"))

        # Chaitin exempts the copies a->b and a->c, but not the pair (b, c).
        chaitin = tests[InterferenceKind.CHAITIN]
        assert not chaitin.interferes(v("a"), v("b"))
        assert not chaitin.interferes(v("a"), v("c"))
        assert chaitin.interferes(v("b"), v("c"))

        # Value-based interference: all three carry the value of a.
        value = tests[InterferenceKind.VALUE]
        assert not value.interferes(v("a"), v("b"))
        assert not value.interferes(v("b"), v("c"))

    def test_lost_copy_phi_result_interferes_with_incremented_value(self):
        function = figure4_lost_copy_problem()
        tests = make_tests(function)
        for kind in InterferenceKind:
            assert tests[kind].interferes(v("x2"), v("x3")), kind

    def test_self_interference_is_false(self):
        function = straight_line_copies()
        tests = make_tests(function)
        for kind in InterferenceKind:
            assert not tests[kind].interferes(v("a"), v("a"))

    def test_value_requires_value_table(self):
        from repro.interference.definitions import InterferenceTest

        function = straight_line_copies()
        oracle = IntersectionOracle(function, LivenessSets(function))
        with pytest.raises(ValueError):
            InterferenceTest(function, oracle, InterferenceKind.VALUE, values=None)


class TestInterferenceGraph:
    def test_edges_and_neighbours(self):
        graph = InterferenceGraph([v("a"), v("b"), v("c")])
        graph.add_edge(v("a"), v("b"))
        assert graph.interferes(v("a"), v("b"))
        assert graph.interferes(v("b"), v("a"))
        assert not graph.interferes(v("a"), v("c"))
        assert graph.neighbours(v("a")) == [v("b")]
        assert graph.edge_count() == 1
        assert len(graph) == 3

    def test_unknown_variables(self):
        graph = InterferenceGraph()
        assert not graph.interferes(v("x"), v("y"))
        graph.add_edge(v("x"), v("y"))          # implicitly added
        assert v("x") in graph and graph.interferes(v("y"), v("x"))

    def test_self_edge_ignored(self):
        graph = InterferenceGraph([v("a")])
        graph.add_edge(v("a"), v("a"))
        assert not graph.interferes(v("a"), v("a"))
        assert graph.edge_count() == 0

    def test_footprint_formula(self):
        assert InterferenceGraph.evaluated_footprint(80) == (80 + 7) // 8 * 80 // 2

    @pytest.mark.parametrize("kind", list(InterferenceKind))
    def test_scan_build_matches_all_pairs_build(self, kind):
        for function in generated_programs(count=3, size=28):
            oracle = IntersectionOracle(function, LivenessSets(function))
            test = make_interference_test(function, oracle, kind)
            universe = function.variables()
            scan = InterferenceGraph.build(function, test, universe)
            reference = InterferenceGraph.build_all_pairs(function, test, universe)
            for i, a in enumerate(universe):
                for b in universe[i + 1:]:
                    assert scan.interferes(a, b) == reference.interferes(a, b), (
                        kind, function.name, str(a), str(b)
                    )

    def test_build_on_paper_example(self):
        function = straight_line_copies()
        oracle = IntersectionOracle(function, LivenessSets(function))
        test = make_interference_test(function, oracle, InterferenceKind.VALUE)
        graph = InterferenceGraph.build(function, test, [v("a"), v("b"), v("c")])
        assert not graph.interferes(v("a"), v("b"))
        assert not graph.interferes(v("b"), v("c"))
