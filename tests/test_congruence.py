"""Tests for congruence classes and the linear class-vs-class interference check."""

import pytest

from repro.interference.congruence import CongruenceClasses
from repro.interference.definitions import InterferenceKind, make_interference_test
from repro.ir.instructions import Variable
from repro.liveness.dataflow import LivenessSets
from repro.liveness.intersection import IntersectionOracle
from repro.outofssa.method_i import insert_phi_copies
from repro.gallery import figure3_swap_problem, figure4_lost_copy_problem
from tests.helpers import generated_programs, straight_line_copies


def v(name: str) -> Variable:
    return Variable(name)


def build_classes(function, kind=InterferenceKind.VALUE, linear=True):
    oracle = IntersectionOracle(function, LivenessSets(function))
    test = make_interference_test(function, oracle, kind)
    return CongruenceClasses(oracle, test, use_linear_check=linear)


class TestBasicClassManagement:
    def test_singletons_and_same_class(self):
        function = straight_line_copies()
        classes = build_classes(function)
        assert classes.class_of(v("a")) is classes.class_of(v("a"))
        assert not classes.same_class(v("a"), v("b"))
        assert classes.representative(v("a")) == v("a")

    def test_make_class_sorts_by_dominance(self):
        function = straight_line_copies()
        classes = build_classes(function)
        made = classes.make_class([v("c"), v("a"), v("b")])
        assert made.members == [v("a"), v("b"), v("c")]
        assert classes.same_class(v("a"), v("c"))

    def test_merge_keeps_sorted_order(self):
        function = straight_line_copies()
        classes = build_classes(function)
        left = classes.make_class([v("a"), v("c")])
        right = classes.make_class([v("b")])
        merged = classes.merge(left, right)
        assert merged.members == [v("a"), v("b"), v("c")]
        assert classes.class_of(v("b")) is merged

    def test_register_labels_conflict(self):
        function = straight_line_copies()
        classes = build_classes(function)
        left = classes.make_class([v("a")], register="R0")
        right = classes.make_class([v("b")], register="R1")
        interferes, _ = classes.interfere(left, right)
        assert interferes
        with pytest.raises(ValueError):
            classes.merge(left, right)

    def test_merge_preserves_register_label(self):
        function = straight_line_copies()
        classes = build_classes(function)
        left = classes.make_class([v("a")], register="R0")
        right = classes.make_class([v("b")])
        merged = classes.merge(left, right)
        assert merged.register == "R0"


class TestInterferenceChecks:
    def test_try_coalesce_value_example(self):
        """On the b = a; c = a example the value rule coalesces everything."""
        function = straight_line_copies()
        classes = build_classes(function, InterferenceKind.VALUE)
        assert classes.try_coalesce(v("b"), v("a"))
        assert classes.try_coalesce(v("c"), v("a"))
        assert classes.same_class(v("b"), v("c"))

    def test_try_coalesce_intersect_refuses(self):
        function = straight_line_copies()
        classes = build_classes(function, InterferenceKind.INTERSECT)
        assert not classes.try_coalesce(v("b"), v("a"))

    def test_skip_copy_pair_rule(self):
        """Sreedhar's rule exempts the copy's own pair from the check."""
        function = straight_line_copies()
        classes = build_classes(function, InterferenceKind.INTERSECT)
        assert classes.try_coalesce(v("b"), v("a"), skip_copy_pair=True)
        # A second coalescing now hits the (c, b) pair, which is not exempted.
        assert not classes.try_coalesce(v("c"), v("a"), skip_copy_pair=True)

    def test_lost_copy_phi_node_interferences(self):
        """Figure 4: the φ-node interferes with x2 (the copy that must stay),
        but not with x1 or x3 (whose copies can be coalesced)."""
        function = figure4_lost_copy_problem()
        insertion = insert_phi_copies(function)
        classes = build_classes(function, InterferenceKind.VALUE)
        phi_node = classes.make_class(insertion.phi_nodes[0])

        x2_class = classes.class_of(v("x2"))
        interferes, _ = classes.interfere(phi_node, x2_class)
        assert interferes

        for name in ("x1", "x3"):
            other = classes.class_of(v(name))
            interferes, _ = classes.interfere(phi_node, other)
            assert not interferes, name

    @pytest.mark.parametrize("kind", [InterferenceKind.INTERSECT, InterferenceKind.VALUE])
    def test_linear_equals_quadratic_on_phi_webs(self, kind):
        """The linear sweep must agree with the all-pairs reference."""
        for maker in (figure3_swap_problem, figure4_lost_copy_problem):
            function = maker()
            insertion = insert_phi_copies(function)
            linear = build_classes(function, kind, linear=True)
            quadratic = build_classes(function, kind, linear=False)
            phi_linear = [linear.make_class(members) for members in insertion.phi_nodes]
            phi_quadratic = [quadratic.make_class(members) for members in insertion.phi_nodes]
            candidates = [var for var in function.variables()]
            for index, (lin_cls, quad_cls) in enumerate(zip(phi_linear, phi_quadratic)):
                for var in candidates:
                    if var in lin_cls.members:
                        continue
                    lin_answer, _ = linear.interfere(lin_cls, linear.class_of(var))
                    quad_answer = quadratic.interfere_quadratic(quad_cls, quadratic.class_of(var))
                    assert lin_answer == quad_answer, (maker.__name__, index, var)

    @pytest.mark.parametrize("kind", [InterferenceKind.INTERSECT, InterferenceKind.VALUE])
    def test_linear_equals_quadratic_after_greedy_merging(self, kind):
        """Grow classes by coalescing copies, comparing both checkers at every step."""
        from repro.coalescing.engine import collect_affinities

        for function in generated_programs(count=3, size=30):
            function = function.copy()
            insertion = insert_phi_copies(function)
            linear = build_classes(function, kind, linear=True)
            quadratic = build_classes(function, kind, linear=False)
            for members in insertion.phi_nodes:
                linear.make_class(members)
                quadratic.make_class(members)
            affinities = collect_affinities(function, insertion)
            for affinity in affinities:
                lin_left = linear.class_of(affinity.dst)
                lin_right = linear.class_of(affinity.src)
                quad_left = quadratic.class_of(affinity.dst)
                quad_right = quadratic.class_of(affinity.src)
                if lin_left is lin_right:
                    continue
                lin_answer, equal_anc_out = linear.interfere(lin_left, lin_right)
                quad_answer = quadratic.interfere_quadratic(quad_left, quad_right)
                assert lin_answer == quad_answer, (function.name, str(affinity.dst), str(affinity.src))
                if not lin_answer:
                    linear.merge(lin_left, lin_right, equal_anc_out)
                    quadratic.merge(quad_left, quad_right)

    def test_pair_query_counter_increases(self):
        function = straight_line_copies()
        classes = build_classes(function)
        classes.try_coalesce(v("b"), v("a"))
        assert classes.pair_queries > 0

    def test_classes_listing(self):
        function = straight_line_copies()
        classes = build_classes(function)
        classes.make_class([v("a"), v("b")])
        classes.class_of(v("c"))
        assert len(classes.classes()) == 2


# --------------------------------------------------------------------------- ≺-key memoization
class TestOrderKeyMemoization:
    """The ≺ sort keys are memoized on the intersection oracle: however many
    class merges re-compare variables, each key is computed exactly once (the
    regression the ``order_key_computations`` counter pins down)."""

    def test_keys_computed_once_across_repeated_merges(self):
        for function in generated_programs(count=2, size=30):
            function = function.copy()
            insertion = insert_phi_copies(function)
            oracle = IntersectionOracle(function, LivenessSets(function))
            test = make_interference_test(function, oracle, InterferenceKind.VALUE)
            classes = CongruenceClasses(oracle, test, use_linear_check=True)
            for members in insertion.phi_nodes:
                classes.make_class(members)
            from repro.coalescing.engine import collect_affinities

            for affinity in collect_affinities(function, insertion):
                classes.try_coalesce(affinity.dst, affinity.src)
            touched = {
                var
                for cls in classes.classes()
                for var in cls.members
            }
            # One computation per distinct variable the machinery ever sorted,
            # no matter how many merges re-compared it.
            assert oracle.order_key_computations <= len(oracle._order_keys)
            assert set(oracle._order_keys) >= touched
            before = oracle.order_key_computations
            # Re-sorting everything again is pure cache hits.
            for cls in classes.classes():
                sorted(cls.members, key=oracle.dominance_order_key)
            assert oracle.order_key_computations == before

    def test_invalidate_keys_drops_only_affected(self):
        function = straight_line_copies()
        oracle = IntersectionOracle(function, LivenessSets(function))
        key_a = oracle.dominance_order_key(v("a"))
        oracle.dominance_order_key(v("b"))
        assert oracle.order_key_computations == 2
        oracle.invalidate_keys([v("a")])
        assert oracle.dominance_order_key(v("b")) is not None
        assert oracle.order_key_computations == 2      # b was still cached
        assert oracle.dominance_order_key(v("a")) == key_a
        assert oracle.order_key_computations == 3      # a was recomputed

    def test_dominates_is_memoized(self):
        function = straight_line_copies()
        oracle = IntersectionOracle(function, LivenessSets(function))
        assert oracle.dominates(v("a"), v("b"))
        assert (v("a"), v("b")) in oracle._dominates_memo
        assert oracle.dominates(v("a"), v("b"))
        oracle.invalidate_keys()
        assert not oracle._dominates_memo


# --------------------------------------------------------------------------- class rows
class TestMatrixClassRows:
    """Matrix-backed class checks: merged adjacency rows answer class-vs-class
    interference without any pairwise query, and always agree with the
    quadratic reference."""

    def _matrix_classes(self, function, kind, universe=None):
        from repro.interference.graph import MatrixInterference
        from repro.liveness.bitsets import BitLivenessSets

        oracle = IntersectionOracle(function, BitLivenessSets(function))
        from repro.ssa.values import ValueTable

        values = ValueTable(function, oracle.domtree) if kind is InterferenceKind.VALUE else None
        backend = MatrixInterference(function, oracle, kind, values, universe=universe)
        return CongruenceClasses(backend, use_linear_check=False)

    @pytest.mark.parametrize("kind", [InterferenceKind.INTERSECT, InterferenceKind.VALUE])
    def test_row_checks_agree_with_quadratic_and_skip_queries(self, kind):
        from repro.coalescing.engine import collect_affinities

        for function in generated_programs(count=3, size=30):
            function = function.copy()
            insertion = insert_phi_copies(function)
            rows = self._matrix_classes(function, kind)
            reference = build_classes(function, kind, linear=False)
            for members in insertion.phi_nodes:
                rows.make_class(members)
                reference.make_class(members)
            for affinity in collect_affinities(function, insertion):
                left, right = rows.class_of(affinity.dst), rows.class_of(affinity.src)
                ref_left = reference.class_of(affinity.dst)
                ref_right = reference.class_of(affinity.src)
                if left is right:
                    continue
                row_answer, _ = rows.interfere(left, right)
                ref_answer = reference.interfere_quadratic(ref_left, ref_right)
                assert row_answer == ref_answer, (function.name, str(affinity.dst))
                if not row_answer:
                    rows.merge(left, right)
                    reference.merge(ref_left, ref_right)
            assert rows.class_row_checks > 0
            assert rows.pair_queries == 0      # every check came from the rows

    def test_non_universe_member_falls_back_to_quadratic(self):
        function = figure4_lost_copy_problem()
        insertion = insert_phi_copies(function)
        members = insertion.phi_nodes[0]
        # Restrict the matrix so one φ member is outside its universe.
        rows = self._matrix_classes(
            function, InterferenceKind.INTERSECT, universe=list(members)[:1]
        )
        left = rows.make_class(members)
        other = next(
            var for var in function.variables() if var not in left.members
        )
        answer, _ = rows.interfere(left, rows.class_of(other))
        assert rows.class_row_checks == 0     # fell back: member without a slot
        assert isinstance(answer, bool)
