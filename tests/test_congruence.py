"""Tests for congruence classes and the linear class-vs-class interference check."""

import pytest

from repro.interference.congruence import CongruenceClasses
from repro.interference.definitions import InterferenceKind, make_interference_test
from repro.ir.instructions import Variable
from repro.liveness.dataflow import LivenessSets
from repro.liveness.intersection import IntersectionOracle
from repro.outofssa.method_i import insert_phi_copies
from repro.gallery import figure3_swap_problem, figure4_lost_copy_problem
from tests.helpers import generated_programs, straight_line_copies


def v(name: str) -> Variable:
    return Variable(name)


def build_classes(function, kind=InterferenceKind.VALUE, linear=True):
    oracle = IntersectionOracle(function, LivenessSets(function))
    test = make_interference_test(function, oracle, kind)
    return CongruenceClasses(oracle, test, use_linear_check=linear)


class TestBasicClassManagement:
    def test_singletons_and_same_class(self):
        function = straight_line_copies()
        classes = build_classes(function)
        assert classes.class_of(v("a")) is classes.class_of(v("a"))
        assert not classes.same_class(v("a"), v("b"))
        assert classes.representative(v("a")) == v("a")

    def test_make_class_sorts_by_dominance(self):
        function = straight_line_copies()
        classes = build_classes(function)
        made = classes.make_class([v("c"), v("a"), v("b")])
        assert made.members == [v("a"), v("b"), v("c")]
        assert classes.same_class(v("a"), v("c"))

    def test_merge_keeps_sorted_order(self):
        function = straight_line_copies()
        classes = build_classes(function)
        left = classes.make_class([v("a"), v("c")])
        right = classes.make_class([v("b")])
        merged = classes.merge(left, right)
        assert merged.members == [v("a"), v("b"), v("c")]
        assert classes.class_of(v("b")) is merged

    def test_register_labels_conflict(self):
        function = straight_line_copies()
        classes = build_classes(function)
        left = classes.make_class([v("a")], register="R0")
        right = classes.make_class([v("b")], register="R1")
        interferes, _ = classes.interfere(left, right)
        assert interferes
        with pytest.raises(ValueError):
            classes.merge(left, right)

    def test_merge_preserves_register_label(self):
        function = straight_line_copies()
        classes = build_classes(function)
        left = classes.make_class([v("a")], register="R0")
        right = classes.make_class([v("b")])
        merged = classes.merge(left, right)
        assert merged.register == "R0"


class TestInterferenceChecks:
    def test_try_coalesce_value_example(self):
        """On the b = a; c = a example the value rule coalesces everything."""
        function = straight_line_copies()
        classes = build_classes(function, InterferenceKind.VALUE)
        assert classes.try_coalesce(v("b"), v("a"))
        assert classes.try_coalesce(v("c"), v("a"))
        assert classes.same_class(v("b"), v("c"))

    def test_try_coalesce_intersect_refuses(self):
        function = straight_line_copies()
        classes = build_classes(function, InterferenceKind.INTERSECT)
        assert not classes.try_coalesce(v("b"), v("a"))

    def test_skip_copy_pair_rule(self):
        """Sreedhar's rule exempts the copy's own pair from the check."""
        function = straight_line_copies()
        classes = build_classes(function, InterferenceKind.INTERSECT)
        assert classes.try_coalesce(v("b"), v("a"), skip_copy_pair=True)
        # A second coalescing now hits the (c, b) pair, which is not exempted.
        assert not classes.try_coalesce(v("c"), v("a"), skip_copy_pair=True)

    def test_lost_copy_phi_node_interferences(self):
        """Figure 4: the φ-node interferes with x2 (the copy that must stay),
        but not with x1 or x3 (whose copies can be coalesced)."""
        function = figure4_lost_copy_problem()
        insertion = insert_phi_copies(function)
        classes = build_classes(function, InterferenceKind.VALUE)
        phi_node = classes.make_class(insertion.phi_nodes[0])

        x2_class = classes.class_of(v("x2"))
        interferes, _ = classes.interfere(phi_node, x2_class)
        assert interferes

        for name in ("x1", "x3"):
            other = classes.class_of(v(name))
            interferes, _ = classes.interfere(phi_node, other)
            assert not interferes, name

    @pytest.mark.parametrize("kind", [InterferenceKind.INTERSECT, InterferenceKind.VALUE])
    def test_linear_equals_quadratic_on_phi_webs(self, kind):
        """The linear sweep must agree with the all-pairs reference."""
        for maker in (figure3_swap_problem, figure4_lost_copy_problem):
            function = maker()
            insertion = insert_phi_copies(function)
            linear = build_classes(function, kind, linear=True)
            quadratic = build_classes(function, kind, linear=False)
            phi_linear = [linear.make_class(members) for members in insertion.phi_nodes]
            phi_quadratic = [quadratic.make_class(members) for members in insertion.phi_nodes]
            candidates = [var for var in function.variables()]
            for index, (lin_cls, quad_cls) in enumerate(zip(phi_linear, phi_quadratic)):
                for var in candidates:
                    if var in lin_cls.members:
                        continue
                    lin_answer, _ = linear.interfere(lin_cls, linear.class_of(var))
                    quad_answer = quadratic.interfere_quadratic(quad_cls, quadratic.class_of(var))
                    assert lin_answer == quad_answer, (maker.__name__, index, var)

    @pytest.mark.parametrize("kind", [InterferenceKind.INTERSECT, InterferenceKind.VALUE])
    def test_linear_equals_quadratic_after_greedy_merging(self, kind):
        """Grow classes by coalescing copies, comparing both checkers at every step."""
        from repro.coalescing.engine import collect_affinities

        for function in generated_programs(count=3, size=30):
            function = function.copy()
            insertion = insert_phi_copies(function)
            linear = build_classes(function, kind, linear=True)
            quadratic = build_classes(function, kind, linear=False)
            for members in insertion.phi_nodes:
                linear.make_class(members)
                quadratic.make_class(members)
            affinities = collect_affinities(function, insertion)
            for affinity in affinities:
                lin_left = linear.class_of(affinity.dst)
                lin_right = linear.class_of(affinity.src)
                quad_left = quadratic.class_of(affinity.dst)
                quad_right = quadratic.class_of(affinity.src)
                if lin_left is lin_right:
                    continue
                lin_answer, equal_anc_out = linear.interfere(lin_left, lin_right)
                quad_answer = quadratic.interfere_quadratic(quad_left, quad_right)
                assert lin_answer == quad_answer, (function.name, str(affinity.dst), str(affinity.src))
                if not lin_answer:
                    linear.merge(lin_left, lin_right, equal_anc_out)
                    quadratic.merge(quad_left, quad_right)

    def test_pair_query_counter_increases(self):
        function = straight_line_copies()
        classes = build_classes(function)
        classes.try_coalesce(v("b"), v("a"))
        assert classes.pair_queries > 0

    def test_classes_listing(self):
        function = straight_line_copies()
        classes = build_classes(function)
        classes.make_class([v("a"), v("b")])
        classes.class_of(v("c"))
        assert len(classes.classes()) == 2
