"""Tests for the SSA value table (paper §III-A) and the CSSA checks."""

from repro.ir.builder import FunctionBuilder
from repro.ir.instructions import Variable
from repro.ssa.cssa import conventionality_violations, is_conventional, phi_webs
from repro.ssa.values import ValueTable
from repro.gallery import figure2_branch_with_decrement, figure3_swap_problem, figure4_lost_copy_problem
from tests.helpers import diamond_function, loop_function, straight_line_copies


def v(name: str) -> Variable:
    return Variable(name)


class TestValueTable:
    def test_copy_chain_shares_value(self):
        function = straight_line_copies()
        values = ValueTable(function)
        assert values.same_value(v("a"), v("b"))
        assert values.same_value(v("b"), v("c"))
        assert values.value(v("b")) == v("a")

    def test_constant_copies_share_value(self):
        fb = FunctionBuilder("consts")
        entry = fb.block("entry")
        with fb.at(entry):
            fb.copy("x", 5)
            fb.copy("y", 5)
            fb.copy("z", 6)
            fb.ret("x")
        values = ValueTable(fb.finish())
        assert values.same_value(v("x"), v("y"))
        assert not values.same_value(v("x"), v("z"))

    def test_phi_defines_a_new_value(self):
        function = loop_function()
        values = ValueTable(function)
        assert not values.same_value(v("i1"), v("i0"))
        assert values.value(v("i1")) == v("i1")

    def test_operations_define_new_values(self):
        function = loop_function()
        values = ValueTable(function)
        assert not values.same_value(v("s2"), v("s1"))

    def test_parallel_copy_components_get_source_values(self):
        fb = FunctionBuilder("pc", params=("p",))
        entry = fb.block("entry")
        with fb.at(entry):
            a = fb.op("add", "p", 1, name="a")
            fb.parallel_copy(("x", a), ("y", 3))
            fb.ret("x")
        values = ValueTable(fb.finish())
        assert values.same_value(v("x"), v("a"))
        assert values.value(v("y")) == ("const", 3)

    def test_volatile_counters_are_not_single_valued(self):
        function = figure2_branch_with_decrement()
        values = ValueTable(function)
        # u is a copy of n, but u is decremented by the terminator: it must
        # not be considered equal in value to n.
        assert not values.same_value(v("u"), v("n"))

    def test_incremental_registration(self):
        function = straight_line_copies()
        values = ValueTable(function)
        fresh = function.new_variable("b")
        values.set_copy_of(fresh, v("b"))
        assert values.same_value(fresh, v("a"))
        other = function.new_variable("w")
        values.set_fresh(other)
        assert values.value(other) == other


class TestPhiWebs:
    def test_webs_group_connected_variables(self):
        function = figure3_swap_problem()
        webs = phi_webs(function)
        all_members = {var.name for members in webs.values() for var in members}
        assert {"a", "b", "a0", "b0"} <= all_members
        # a and b are connected through the two φs, so they share one web.
        containing_a = next(m for m in webs.values() if v("a") in m)
        assert v("b") in containing_a

    def test_no_phis_no_webs(self):
        assert phi_webs(straight_line_copies()) == {}


class TestConventionality:
    def test_fresh_diamond_is_conventional(self):
        assert is_conventional(diamond_function())

    def test_lost_copy_is_not_conventional(self):
        function = figure4_lost_copy_problem()
        assert not is_conventional(function)
        violations = conventionality_violations(function)
        assert any({a.name, b.name} == {"x2", "x3"} for a, b in violations)

    def test_swap_is_not_conventional(self):
        assert not is_conventional(figure3_swap_problem())

    def test_method_i_restores_conventionality(self):
        from repro.outofssa.method_i import insert_phi_copies

        for maker in (figure3_swap_problem, figure4_lost_copy_problem):
            function = maker()
            insert_phi_copies(function)
            assert is_conventional(function), maker.__name__
