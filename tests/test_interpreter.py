"""Tests for the IR interpreter."""

import pytest

from repro.interp.interpreter import (
    ExecutionLimitExceeded,
    Interpreter,
    UninitializedRead,
    run_function,
)
from repro.ir.builder import FunctionBuilder
from tests.helpers import diamond_function, loop_function
from repro.gallery import figure2_branch_with_decrement, figure3_swap_problem


class TestBasics:
    def test_diamond_both_paths(self):
        function = diamond_function()
        assert run_function(function, [1]).return_value == 1
        assert run_function(function, [0]).return_value == 2
        assert run_function(function, [1]).trace == (1,)

    def test_loop_sum(self):
        function = loop_function()
        result = run_function(function, [5])
        assert result.return_value == 0 + 1 + 2 + 3 + 4
        assert result.trace == (10,)
        assert result.block_path[0] == "entry"
        assert result.block_path.count("body") == 5

    def test_wrong_arity(self):
        with pytest.raises(ValueError):
            run_function(loop_function(), [])

    def test_observable_comparison_ignores_steps(self):
        first = run_function(loop_function(), [3])
        second = run_function(loop_function(), [3])
        second.steps = 999
        assert first == second


class TestOpcodes:
    @pytest.mark.parametrize(
        "opcode,args,expected",
        [
            ("add", (2, 3), 5),
            ("sub", (2, 3), -1),
            ("mul", (4, 3), 12),
            ("div", (7, 2), 3),
            ("div", (7, 0), 0),
            ("mod", (7, 3), 1),
            ("mod", (7, 0), 0),
            ("neg", (5,), -5),
            ("not", (0,), 1),
            ("and", (6, 3), 2),
            ("or", (6, 3), 7),
            ("xor", (6, 3), 5),
            ("shl", (1, 3), 8),
            ("shr", (8, 2), 2),
            ("min", (4, 9), 4),
            ("max", (4, 9), 9),
            ("abs", (-4,), 4),
            ("select", (1, 10, 20), 10),
            ("select", (0, 10, 20), 20),
            ("cmp_lt", (1, 2), 1),
            ("cmp_le", (2, 2), 1),
            ("cmp_gt", (1, 2), 0),
            ("cmp_ge", (2, 2), 1),
            ("cmp_eq", (2, 3), 0),
            ("cmp_ne", (2, 3), 1),
        ],
    )
    def test_opcode(self, opcode, args, expected):
        fb = FunctionBuilder("op")
        entry = fb.block("entry")
        with fb.at(entry):
            result = fb.op(opcode, *args, name="result")
            fb.ret(result)
        assert run_function(fb.finish(), []).return_value == expected

    def test_unknown_opcode(self):
        fb = FunctionBuilder("bad")
        entry = fb.block("entry")
        with fb.at(entry):
            result = fb.op("frobnicate", 1, name="result")
            fb.ret(result)
        with pytest.raises(ValueError, match="unknown opcode"):
            run_function(fb.finish(), [])

    def test_arithmetic_wraps_to_64_bits(self):
        fb = FunctionBuilder("wrap")
        entry = fb.block("entry")
        with fb.at(entry):
            big = fb.const((1 << 63) - 1, name="big")
            result = fb.op("add", big, 1, name="result")
            fb.ret(result)
        assert run_function(fb.finish(), []).return_value == -(1 << 63)


class TestSemantics:
    def test_parallel_copy_is_parallel(self):
        fb = FunctionBuilder("swap")
        entry = fb.block("entry")
        with fb.at(entry):
            a = fb.const(1, name="a")
            b = fb.const(2, name="b")
            fb.parallel_copy(("a", b), ("b", a))
            r = fb.op("sub", "a", "b", name="r")
            fb.ret(r)
        assert run_function(fb.finish(), []).return_value == 2 - 1

    def test_phis_evaluate_in_parallel(self):
        result = run_function(figure3_swap_problem(), [3, 5, 9])
        # Values swap every iteration: (5,9), (9,5), (5,9).
        assert result.trace[:6] == (5, 9, 9, 5, 5, 9)

    def test_br_dec_semantics(self):
        result = run_function(figure2_branch_with_decrement(), [4])
        # Loop body runs 4 times: s accumulates 4+3+2+1, final u is 0.
        assert result.return_value == 4 + 3 + 2 + 1
        assert result.block_path.count("loop") == 4

    def test_call_is_deterministic_and_pure(self):
        fb = FunctionBuilder("calls", params=("p",))
        entry = fb.block("entry")
        with fb.at(entry):
            a = fb.call("ext0", "p", 3, name="a")
            b = fb.call("ext0", "p", 3, name="b")
            same = fb.op("cmp_eq", a, b, name="same")
            fb.ret(same)
        assert run_function(fb.finish(), [7]).return_value == 1

    def test_uninitialized_read(self):
        fb = FunctionBuilder("uninit")
        entry = fb.block("entry")
        with fb.at(entry):
            fb.print("ghost")
            fb.ret()
        with pytest.raises(UninitializedRead):
            run_function(fb.finish(), [])

    def test_step_limit(self):
        fb = FunctionBuilder("forever")
        entry, loop = fb.blocks("entry", "loop")
        with fb.at(entry):
            fb.jump(loop)
        with fb.at(loop):
            fb.jump(loop)
        with pytest.raises(ExecutionLimitExceeded):
            Interpreter(fb.finish(), max_steps=100).run([])

    def test_phi_without_matching_predecessor(self):
        function = diamond_function()
        phi = function.blocks["join"].phis[0]
        phi.args = {"left": phi.args["left"]}
        with pytest.raises(ValueError, match="no argument"):
            run_function(function, [0])

    def test_missing_terminator_detected(self):
        fb = FunctionBuilder("broken")
        entry = fb.block("entry")
        with fb.at(entry):
            fb.const(1, name="x")
        with pytest.raises(ValueError, match="terminator"):
            run_function(fb.finish(), [])

    def test_return_without_value(self):
        fb = FunctionBuilder("void")
        entry = fb.block("entry")
        with fb.at(entry):
            fb.print(1)
            fb.ret()
        result = run_function(fb.finish(), [])
        assert result.return_value is None and result.trace == (1,)
