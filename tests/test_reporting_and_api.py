"""Tests for result reporting, the public top-level API and small leftovers."""

import pytest

import repro
from repro.bench.harness import Figure5Row, Figure6Row, Figure7Row
from repro.bench.reporting import format_figure5, format_figure6, format_figure7
from repro.coalescing.variants import VARIANTS
from repro.outofssa.driver import ENGINE_CONFIGURATIONS
from repro.regalloc.linear_scan import Location


class TestTopLevelAPI:
    def test_version_and_exports(self):
        assert repro.__version__ == "1.3.0"
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_round_trip_through_top_level_functions(self):
        text = (
            "function double(x) {\n"
            "  entry:\n"
            "    y = add x, x\n"
            "    ret y\n"
            "}\n"
        )
        function = repro.parse_function(text)
        assert repro.run_function(function, [4]).return_value == 8
        assert "double" in repro.format_function(function)

    def test_engine_and_variant_lookup(self):
        assert repro.engine_by_name("us_i").name == "us_i"
        assert repro.variant_by_name("value").name == "value"
        assert repro.DEFAULT_ENGINE in repro.ENGINE_CONFIGURATIONS

    def test_engine_descriptions_are_distinct(self):
        descriptions = {config.describe() for config in ENGINE_CONFIGURATIONS}
        assert len(descriptions) == len(ENGINE_CONFIGURATIONS) - 1 or len(descriptions) == len(
            ENGINE_CONFIGURATIONS
        )
        for config in ENGINE_CONFIGURATIONS:
            assert config.label
            assert config.describe()


class TestReportFormatting:
    def _figure5_rows(self):
        row = Figure5Row(benchmark="bench")
        for index, variant in enumerate(VARIANTS):
            row.static_copies[variant.name] = 10 - index
            row.weighted_copies[variant.name] = float(20 - index)
        row.compute_ratios()
        return [row]

    def test_format_figure5(self):
        text = format_figure5(self._figure5_rows())
        assert "bench" in text
        assert "1.000" in text           # the Intersect baseline ratio
        lines = text.splitlines()
        assert len(lines) == 3           # header, rule, one row

    def test_figure5_ratio_baseline_of_zero(self):
        row = Figure5Row(benchmark="empty")
        for variant in VARIANTS:
            row.static_copies[variant.name] = 0
        row.compute_ratios()
        assert all(ratio == 1.0 for ratio in row.ratios.values())

    def test_format_figure6_handles_missing_engines(self):
        row = Figure6Row(benchmark="b", seconds={"sreedhar_iii": 2.0, "us_i": 1.0})
        row.compute_ratios()
        text = format_figure6([row])
        assert "0.50" in text
        assert "-" in text               # engines without data print a dash

    def test_format_figure7(self):
        row = Figure7Row(
            metric="total",
            measured={config.name: 1024 * (index + 1) for index, config in enumerate(ENGINE_CONFIGURATIONS)},
        )
        row.compute_ratios()
        text = format_figure7([row])
        assert "total" in text and "KiB" in text
        assert row.ratios["sreedhar_iii"] == pytest.approx(1.0)


class TestSmallLeftovers:
    def test_location_str_and_kind(self):
        register = Location("register", "R3")
        slot = Location("stack", "slot2")
        assert str(register) == "R3" and register.is_register
        assert str(slot) == "slot2" and not slot.is_register

    def test_interval_repr_mentions_pin(self):
        from repro.ir.instructions import Variable
        from repro.regalloc.intervals import LiveInterval

        interval = LiveInterval(Variable("x"), 1, 4, pinned="R0")
        assert "pin=R0" in repr(interval)

    def test_copy_counts_weighting_uses_block_frequencies(self):
        from repro.bench.metrics import copy_counts
        from repro.gallery import figure4_lost_copy_problem
        from repro.outofssa.driver import DEFAULT_ENGINE, destruct_ssa

        function = figure4_lost_copy_problem()
        destruct_ssa(function, DEFAULT_ENGINE)
        counts = copy_counts(function)
        # The surviving copy lives in the loop: weighted count exceeds static.
        assert counts.weighted_copies > counts.static_copies
