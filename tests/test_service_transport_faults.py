"""Transport fault injection: abusive clients must not hurt the daemon.

The seeded-fault style of ``tests/test_verify_faults.py`` applied to the
socket layer: a table of named faults — mid-frame disconnects, abandoned
pipelines, garbage bytes, byte-dribbled frames — each injected against a
live daemon, followed by the same three invariants every time:

1. **liveness** — a fresh connection still gets served;
2. **no leaks** — every in-flight task retires and the admission queue
   returns to zero (abandoned requests are cancelled, not stranded);
3. **warm-state integrity** — a program translated before the fault still
   answers from cache afterwards, bit-identical to the cold reference.
"""

import json
import socket
import struct
import time
from dataclasses import dataclass
from typing import Callable

import pytest

from repro.bench.corpus import CorpusSpec, generate_stress_cfg
from repro.bench.generator import GeneratorConfig, generate_ssa_program
from repro.ir import format_function, parse_function
from repro.pipeline import Pipeline
from repro.service.client import ServiceClient
from repro.service.server import TranslationServer

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")


def _program(seed: int, size: int = 24) -> str:
    return format_function(generate_ssa_program(GeneratorConfig(seed=seed, size=size)))


def _big_program(seed: int, blocks: int = 300) -> str:
    spec = CorpusSpec(name="fault", seed=seed, blocks=blocks, loop_depth=3, variables=8)
    return format_function(generate_stress_cfg(spec))


def _cold_reference(text: str) -> str:
    function = parse_function(text)
    Pipeline.for_engine("us_i").run(function)
    return format_function(function)


def _wait_until(predicate: Callable[[], bool], timeout: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


def _abort(sock: socket.socket) -> None:
    """Close with RST (SO_LINGER 0): the rudest possible disconnect."""
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0))
    except OSError:
        pass
    sock.close()


def _frame(**payload) -> bytes:
    return (json.dumps(payload) + "\n").encode("utf-8")


# --------------------------------------------------------------------------- the fault table
@dataclass
class TransportFault:
    """One scripted abusive-client behaviour against a live daemon."""

    name: str
    description: str
    inject: Callable[[TranslationServer], None]


def _mid_frame_disconnect(server: TranslationServer) -> None:
    sock = socket.create_connection(("127.0.0.1", server.port), timeout=10)
    sock.sendall(b'{"verb": "translate", "ir": "function half(')
    _abort(sock)


def _mid_pipeline_disconnect(server: TranslationServer) -> None:
    """Pipeline a batch plus singles, then vanish without reading a byte."""
    sock = socket.create_connection(("127.0.0.1", server.port), timeout=10)
    batch = [_big_program(seed=50 + index) for index in range(4)]
    data = _frame(verb="translate_batch", irs=batch, id="doomed")
    data += b"".join(
        _frame(verb="translate", ir=_big_program(seed=60 + index), id=index)
        for index in range(3)
    )
    sock.sendall(data)
    time.sleep(0.05)  # let the daemon admit the work before the rug-pull
    _abort(sock)


def _disconnect_between_batch_frames(server: TranslationServer) -> None:
    """Read one streamed item frame, then abort mid-stream."""
    sock = socket.create_connection(("127.0.0.1", server.port), timeout=10)
    sock.sendall(_frame(
        verb="translate_batch",
        irs=[_big_program(seed=70 + index) for index in range(4)],
        id="stream",
    ))
    handle = sock.makefile("rb")
    handle.readline()  # one item frame arrives, the client dies
    _abort(sock)


def _garbage_bytes(server: TranslationServer) -> None:
    sock = socket.create_connection(("127.0.0.1", server.port), timeout=10)
    sock.sendall(b"\x00\xff\xfe garbage \n\n{not json}\n\x01\x02\n")
    sock.close()


def _empty_connection_storm(server: TranslationServer) -> None:
    for _ in range(16):
        sock = socket.create_connection(("127.0.0.1", server.port), timeout=10)
        _abort(sock)


TRANSPORT_FAULTS = [
    TransportFault(
        "mid_frame_disconnect",
        "connection reset halfway through writing one request frame",
        _mid_frame_disconnect,
    ),
    TransportFault(
        "mid_pipeline_disconnect",
        "a batch and three translations in flight when the client vanishes",
        _mid_pipeline_disconnect,
    ),
    TransportFault(
        "disconnect_between_batch_frames",
        "client reads one streamed batch frame then resets the connection",
        _disconnect_between_batch_frames,
    ),
    TransportFault(
        "garbage_bytes",
        "binary garbage and non-JSON lines, then a clean close",
        _garbage_bytes,
    ),
    TransportFault(
        "empty_connection_storm",
        "sixteen connect-then-reset cycles with no bytes sent",
        _empty_connection_storm,
    ),
]


@pytest.fixture()
def server():
    server = TranslationServer(("127.0.0.1", 0), engine="us_i", shards=2, workers=2)
    thread = server.serve_in_background()
    yield server
    server.shutdown()
    thread.join(timeout=10)
    server.server_close()


class TestTransportFaults:
    @pytest.mark.parametrize(
        "fault", TRANSPORT_FAULTS, ids=[fault.name for fault in TRANSPORT_FAULTS]
    )
    def test_fault_leaves_daemon_healthy(self, server, fault):
        canary = _program(seed=1)
        reference = _cold_reference(canary)
        with ServiceClient(port=server.port) as client:
            warmed = client.translate(canary)
        assert warmed["ir"] == reference and not warmed["cached"]

        fault.inject(server)

        # 2. No leaks: abandoned work is cancelled/retired, the admission
        #    queue drains back to zero, the connection set empties.
        assert _wait_until(
            lambda: server.inflight_tasks == 0 and server.pending_requests == 0
        ), (
            f"{fault.name}: leaked {server.inflight_tasks} tasks, "
            f"{server.pending_requests} pending items"
        )
        assert _wait_until(lambda: server.open_connections == 0), (
            f"{fault.name}: {server.open_connections} connections leaked"
        )

        # 1 & 3. Liveness and warm-state integrity on a fresh connection.
        with ServiceClient(port=server.port) as client:
            assert client.ping()["ok"]
            served = client.translate(canary)
            assert served["cached"] is True, (
                f"{fault.name}: the warm cache lost (or never kept) the canary"
            )
            assert served["ir"] == reference, (
                f"{fault.name}: warm state corrupted — response diverged from cold"
            )

    def test_fault_storm_then_full_batch_still_bit_identical(self, server):
        """All faults back to back, then a real batch must come out exact."""
        for fault in TRANSPORT_FAULTS:
            fault.inject(server)
        assert _wait_until(
            lambda: server.inflight_tasks == 0 and server.pending_requests == 0
        )
        texts = [_program(seed=80 + index) for index in range(8)]
        with ServiceClient(port=server.port) as client:
            responses = client.translate_batch(texts)
        for text, response in zip(texts, responses):
            assert response["ir"] == _cold_reference(text)


class TestDribbledWrites:
    def test_byte_dribbled_frame_is_reassembled_and_served(self, server):
        """A frame delivered in tiny delayed chunks still parses as one."""
        text = _program(seed=5)
        data = _frame(verb="translate", ir=text, id="dribble")
        sock = socket.create_connection(("127.0.0.1", server.port), timeout=30)
        try:
            chunk = max(1, len(data) // 40)
            for start in range(0, len(data), chunk):
                sock.sendall(data[start : start + chunk])
                time.sleep(0.002)
            handle = sock.makefile("rb")
            frame = json.loads(handle.readline().decode("utf-8"))
            assert frame["id"] == "dribble" and frame["ok"]
            assert frame["ir"] == _cold_reference(text)
        finally:
            sock.close()

    def test_two_frames_in_one_segment_are_both_served(self, server):
        a, b = _program(seed=6), _program(seed=7)
        payload = _frame(verb="translate", ir=a, id="a") + _frame(
            verb="translate", ir=b, id="b"
        )
        sock = socket.create_connection(("127.0.0.1", server.port), timeout=30)
        try:
            sock.sendall(payload)
            handle = sock.makefile("rb")
            frames = [json.loads(handle.readline()) for _ in range(2)]
            by_id = {frame["id"]: frame for frame in frames}
            assert by_id["a"]["ir"] == _cold_reference(a)
            assert by_id["b"]["ir"] == _cold_reference(b)
        finally:
            sock.close()


class TestSlowReaderBackpressure:
    def test_slow_reader_gets_every_response_intact(self, server):
        """A client that stops reading stalls the daemon's writes (drain),
        not its correctness: once the client catches up, every pipelined
        response arrives exactly once with exact payloads."""
        text = _big_program(seed=90, blocks=400)
        reference = _cold_reference(text)
        with ServiceClient(port=server.port) as warmup:
            assert warmup.translate(text)["ir"] == reference

        requests = 48  # warm hits of a large payload: megabytes of responses
        sock = socket.create_connection(("127.0.0.1", server.port), timeout=60)
        try:
            for index in range(requests):
                sock.sendall(_frame(verb="translate", ir=text, id=index))
            time.sleep(0.75)  # do not read: buffers fill, the daemon pauses
            handle = sock.makefile("rb")
            seen = set()
            for _ in range(requests):
                frame = json.loads(handle.readline())
                assert frame["ok"] and frame["cached"] is True
                assert frame["ir"] == reference
                assert frame["id"] not in seen
                seen.add(frame["id"])
            assert seen == set(range(requests))
        finally:
            sock.close()
        assert _wait_until(
            lambda: server.inflight_tasks == 0 and server.pending_requests == 0
        )
