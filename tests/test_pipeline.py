"""Tests for the pass pipeline, the analysis cache and the batch session."""

import dataclasses

import pytest

from repro.cfg.dominance import DominatorTree
from repro.cfg.frequency import estimate_block_frequencies
from repro.coalescing.engine import AggressiveCoalescer, collect_affinities
from repro.coalescing.sharing import apply_copy_sharing
from repro.coalescing.variants import variant_by_name
from repro.gallery import figure2_branch_with_decrement
from repro.interference.base import QueryInterference
from repro.interference.congruence import CongruenceClasses
from repro.interference.definitions import InterferenceTest
from repro.interference.graph import InterferenceGraph, MatrixInterference
from repro.interp import run_function
from repro.ir import format_function
from repro.liveness.bitsets import BitLivenessSets
from repro.liveness.dataflow import LivenessSets
from repro.liveness.intersection import IntersectionOracle
from repro.liveness.livecheck import LivenessChecker
from repro.liveness.numbering import VariableNumbering
from repro.outofssa.config import DEFAULT_ENGINE, ENGINE_CONFIGURATIONS, EngineConfig, engine_by_name
from repro.outofssa.driver import destruct_ssa
from repro.outofssa.method_i import insert_phi_copies
from repro.outofssa.pinning import pinned_register_groups
from repro.outofssa.result import OutOfSSAStats
from repro.pipeline import (
    AnalysisCache,
    BlockFrequencies,
    IsolationPass,
    PassManager,
    Pipeline,
    PipelineContext,
    Session,
    resolve_engine,
)
from repro.pipeline.phases import (
    build_rename_map,
    candidate_universe,
    materialize,
)
from repro.ssa.values import ValueTable
from repro.utils.instrument import AllocationTracker, track_allocations
from tests.helpers import generated_programs, loop_function, non_ssa_max_function


# --------------------------------------------------------------------------- legacy reference
def legacy_destruct_ssa(function, config):
    """The seed's monolithic driver, re-inlined as the equivalence reference.

    Private analyses per run, private numberings per structure — exactly what
    ``destruct_ssa`` did before the pipeline split.  The pipeline must
    reproduce its output and statistics bit-for-bit.
    """
    stats = OutOfSSAStats()
    variant = variant_by_name(config.coalescing)
    tracker = AllocationTracker()

    with track_allocations(tracker):
        insertion = insert_phi_copies(function, on_branch_def=config.on_branch_def)
        stats.inserted_phi_copies = insertion.inserted_copy_count
        stats.split_blocks = len(insertion.split_blocks)

        frequencies = estimate_block_frequencies(function)

        domtree = DominatorTree(function)
        liveness = {
            "sets": LivenessSets,
            "bitsets": BitLivenessSets,
            "check": LivenessChecker,
        }[config.liveness](function)
        oracle = IntersectionOracle(function, liveness, domtree)
        values = ValueTable(function, domtree)

        affinities = collect_affinities(function, insertion, frequencies)
        stats.affinities = len(affinities)

        universe = candidate_universe(function, insertion, affinities)
        stats.candidate_variables = len(universe)
        stats.num_blocks = len(function.blocks)
        if isinstance(liveness, (LivenessSets, BitLivenessSets)):
            stats.liveness_set_entries = sum(
                len(s) for s in liveness.live_in.values()
            ) + sum(len(s) for s in liveness.live_out.values())

        # Direct (cache-free) construction of the configured backend — what an
        # ad-hoc driver writes by hand since the interference stack became
        # pluggable; the pipeline must reproduce it bit-for-bit.
        if config.interference == "matrix":
            test = MatrixInterference(
                function, oracle, variant.interference, values, universe=universe
            )
        else:
            test = QueryInterference(function, oracle, variant.interference, values)
        stats.interference_backend = config.interference

        classes = CongruenceClasses(test, use_linear_check=config.linear_class_check)
        for members in insertion.phi_nodes:
            classes.make_class(members)
        for register, group in pinned_register_groups(function).items():
            classes.make_class(list(group), register=register)

        coalescer = AggressiveCoalescer(
            classes, skip_copy_pair=variant.skip_copy_pair, ordering=variant.ordering
        )
        run_stats = coalescer.run(affinities)
        stats.coalesced = run_stats.coalesced
        if variant.sharing:
            stats.shared = apply_copy_sharing(
                function, classes, test, run_stats.remaining_affinities
            )

        rename_map = build_rename_map(function, classes)
        shared_destinations = {
            affinity.dst for affinity in run_stats.remaining_affinities if affinity.shared
        }
        materialize(function, rename_map, shared_destinations, frequencies, stats)

        stats.pair_queries = classes.pair_queries
        stats.class_row_checks = classes.class_row_checks
        stats.intersection_queries = oracle.query_count
        stats.matrix_bytes = test.matrix_bytes()

    return stats, rename_map


_STAT_FIELDS = [
    field.name
    for field in dataclasses.fields(OutOfSSAStats)
    # Wall-clock measurements vary run to run, and the core provenance
    # fields describe *how* the run was represented (flat arena vs object
    # walks), not what it computed: neither is part of identity.
    if field.name not in ("elapsed_seconds", "lowering_ms", "core", "flat_bytes")
]


def _stat_dict(stats):
    return {name: getattr(stats, name) for name in _STAT_FIELDS}


class TestPipelineMatchesLegacy:
    @pytest.mark.parametrize("config", ENGINE_CONFIGURATIONS, ids=lambda c: c.name)
    def test_bit_identical_output_on_generator_suite(self, config):
        for program in generated_programs(count=4, size=32):
            legacy_fn = program.copy()
            legacy_stats, legacy_rename = legacy_destruct_ssa(legacy_fn, config)

            pipeline_fn = program.copy()
            result = Pipeline.for_engine(config).run(pipeline_fn)

            assert format_function(pipeline_fn) == format_function(legacy_fn)
            assert result.rename_map == legacy_rename
            assert _stat_dict(result.stats) == _stat_dict(legacy_stats)

    def test_destruct_ssa_is_the_pipeline(self):
        program = loop_function()
        via_wrapper = program.copy()
        via_pipeline = program.copy()
        wrapper_result = destruct_ssa(via_wrapper, engine_by_name("us_iii"))
        pipeline_result = Pipeline.for_engine("us_iii").run(via_pipeline)
        assert format_function(via_wrapper) == format_function(via_pipeline)
        assert _stat_dict(wrapper_result.stats) == _stat_dict(pipeline_result.stats)


class TestSharedNumbering:
    #: Engines that enable both bit-set liveness and the interference graph.
    GRAPH_AND_BITSET_ENGINES = [
        config
        for config in ENGINE_CONFIGURATIONS
        if config.liveness == "bitsets" and config.use_interference_graph
    ]

    def test_the_paper_engines_include_graph_and_bitset_configs(self):
        names = {config.name for config in self.GRAPH_AND_BITSET_ENGINES}
        assert names == {"sreedhar_iii", "us_iii", "us_i"}

    @pytest.mark.parametrize("config", GRAPH_AND_BITSET_ENGINES, ids=lambda c: c.name)
    def test_one_numbering_instance_per_engine_run(self, config, monkeypatch):
        created = []
        original_init = VariableNumbering.__init__

        def counting_init(self, items=()):
            created.append(self)
            original_init(self, items)

        monkeypatch.setattr(VariableNumbering, "__init__", counting_init)
        destruct_ssa(loop_function(), config)
        assert len(created) == 1

    def test_cache_shares_numbering_between_liveness_and_graph(self):
        function = loop_function()
        cache = AnalysisCache(function, engine_by_name("us_i"))
        numbering = cache.get(VariableNumbering)
        liveness = cache.get(BitLivenessSets)
        assert liveness.numbering is numbering

        test = InterferenceTest(
            function, cache.get(IntersectionOracle), variant_by_name("value").interference,
            cache.get(ValueTable),
        )
        graph = InterferenceGraph.build(function, test, numbering=numbering)
        assert graph.numbering is numbering

    def test_graph_membership_is_not_the_shared_numbering(self):
        """Universe-restricted graphs must answer 'not in graph' for numbered
        non-members, so the pairwise fallback still runs for them."""
        function = loop_function()
        numbering = VariableNumbering.of_function(function)
        variables = list(numbering)
        member, outsider = variables[0], variables[-1]
        graph = InterferenceGraph([member], numbering=numbering)
        assert member in graph
        assert outsider not in graph
        assert graph.variables() == [member]
        assert len(graph) == 1

    def test_shared_numbering_does_not_inflate_the_matrix(self):
        """The matrix must stay at candidates²/2 bits even when the shared
        numbering indexes every function variable (paper §IV's restricted
        universe)."""
        function = loop_function()
        numbering = VariableNumbering.of_function(function)
        high_index_candidates = list(numbering)[-2:]
        shared = InterferenceGraph(high_index_candidates, numbering=numbering)
        private = InterferenceGraph(high_index_candidates)
        assert shared.footprint_bytes() == private.footprint_bytes()


class TestAnalysisCache:
    def test_get_caches_and_counts_constructions(self):
        cache = AnalysisCache(loop_function(), DEFAULT_ENGINE)
        first = cache.get(DominatorTree)
        assert cache.get(DominatorTree) is first
        assert cache.constructions[DominatorTree] == 1

    def test_unknown_analysis_raises_key_error(self):
        cache = AnalysisCache(loop_function(), DEFAULT_ENGINE)
        with pytest.raises(KeyError):
            cache.get(int)

    def test_liveness_selection_follows_config(self):
        function = loop_function()
        assert isinstance(
            AnalysisCache(function, engine_by_name("us_i")).liveness(), BitLivenessSets
        )
        assert isinstance(
            AnalysisCache(function.copy(), DEFAULT_ENGINE).liveness(), LivenessChecker
        )
        bad = dataclasses.replace(DEFAULT_ENGINE, liveness="bogus")
        with pytest.raises(ValueError):
            AnalysisCache(function.copy(), bad).liveness()

    def test_invalidate_drops_dependents_transitively(self):
        cache = AnalysisCache(loop_function(), engine_by_name("us_i"))
        cache.get(IntersectionOracle)   # depends on liveness and the domtree
        cache.get(ValueTable)           # depends on the domtree
        cache.get(BlockFrequencies)     # depends on the domtree
        cache.invalidate(DominatorTree)
        assert cache.cached(DominatorTree) is None
        assert cache.cached(IntersectionOracle) is None
        assert cache.cached(ValueTable) is None
        assert cache.cached(BlockFrequencies) is None
        # The liveness rows do not read the dominator tree: still cached.
        assert cache.cached(BitLivenessSets) is not None

    def test_invalidate_all_preserve(self):
        cache = AnalysisCache(loop_function(), engine_by_name("us_i"))
        domtree = cache.get(DominatorTree)
        cache.get(ValueTable)
        cache.invalidate_all(preserve=(DominatorTree,))
        assert cache.cached(DominatorTree) is domtree
        assert cache.cached(ValueTable) is None

    def test_put_serves_precomputed_instances(self):
        function = loop_function()
        cache = AnalysisCache(function, DEFAULT_ENGINE)
        frequencies = BlockFrequencies({label: 1.0 for label in function.blocks})
        cache.put(BlockFrequencies, frequencies)
        assert cache.get(BlockFrequencies) is frequencies


class TestInvalidationDuringRuns:
    def _context(self, function, config):
        cache = AnalysisCache(function, config)
        return cache, PipelineContext(
            function=function,
            config=config,
            analyses=cache,
            stats=OutOfSSAStats(),
            tracker=AllocationTracker(),
            variant=variant_by_name(config.coalescing),
        )

    def test_stale_domtree_is_dropped_when_isolation_splits_a_block(self):
        function = figure2_branch_with_decrement()
        cache, ctx = self._context(function, DEFAULT_ENGINE)
        stale = cache.get(DominatorTree)
        PassManager([IsolationPass()]).run(ctx)
        assert ctx.stats.split_blocks > 0
        assert cache.cached(DominatorTree) is None
        fresh = cache.get(DominatorTree)
        assert fresh is not stale
        # The fresh tree covers the blocks created by the split; the stale
        # tree cannot have known them.
        assert set(fresh.idom) == set(function.blocks)
        assert not set(stale.idom) >= set(function.blocks)

    def test_full_run_leaves_no_cached_analyses(self):
        function = loop_function()
        config = engine_by_name("us_i")
        cache = AnalysisCache(function, config)
        stale = cache.get(DominatorTree)
        Pipeline.for_engine(config).run(function, cache=cache)
        # Materialization rewrote the function: nothing may survive.
        assert cache.cached(DominatorTree) is None
        assert cache.cached(BitLivenessSets) is None
        fresh = cache.get(DominatorTree)
        assert fresh is not stale
        assert fresh.idom == DominatorTree(function).idom

    def test_run_rejects_a_cache_of_another_function(self):
        cache = AnalysisCache(loop_function(), DEFAULT_ENGINE)
        with pytest.raises(ValueError):
            Pipeline.for_engine(DEFAULT_ENGINE).run(loop_function(), cache=cache)

    def test_run_rejects_a_cache_of_another_engine(self):
        """A mismatched cache would build the cache's liveness backend while
        the result claims this pipeline's engine ran."""
        function = loop_function()
        cache = AnalysisCache(function, DEFAULT_ENGINE)
        with pytest.raises(ValueError, match="engine"):
            Pipeline.for_engine("us_i").run(function, cache=cache)


class TestEngineConfigBuilder:
    def test_noop_builder_returns_the_base(self):
        assert EngineConfig.builder("us_i").build() == engine_by_name("us_i")

    def test_liveness_override_derives_name_and_label(self):
        config = EngineConfig.builder("us_i").liveness("sets").build()
        assert config.liveness == "sets"
        assert config.name == "us_i_sets"
        assert config.label == "Us I [sets]"

    def test_explicit_name_and_label_win(self):
        config = (
            EngineConfig.builder()
            .name("custom").label("Custom")
            .coalescing("intersect").interference_graph(False)
            .build()
        )
        assert (config.name, config.label) == ("custom", "Custom")
        assert config.coalescing == "intersect"
        assert not config.use_interference_graph

    def test_multiple_overrides_stack_suffixes(self):
        config = (
            EngineConfig.builder("us_i")
            .liveness("check")
            .interference_graph(False)
            .build()
        )
        assert config.name == "us_i_check_intercheck"
        assert config.label == "Us I [check, intercheck]"

    def test_validation(self):
        with pytest.raises(KeyError):
            EngineConfig.builder("bogus")
        with pytest.raises(KeyError):
            EngineConfig.builder().coalescing("bogus")
        with pytest.raises(ValueError):
            EngineConfig.builder().liveness("bogus")
        with pytest.raises(ValueError):
            EngineConfig.builder().on_branch_def("bogus")

    def test_resolve_engine_accepts_all_spellings(self):
        config = engine_by_name("us_iii")
        assert resolve_engine("us_iii") is config
        assert resolve_engine(config) is config
        assert resolve_engine(EngineConfig.builder("us_iii")) == config
        with pytest.raises(TypeError):
            resolve_engine(42)


class TestPipelineComposition:
    def test_out_of_ssa_pass_names(self):
        pipeline = Pipeline.for_engine("us_i")
        assert [p.name for p in pipeline.passes] == [
            "isolate", "interference", "coalesce", "materialize",
        ]
        assert "isolate -> interference -> coalesce -> materialize" in pipeline.describe()

    def test_front_half_flags_prepend_passes(self):
        pipeline = Pipeline.for_engine("us_i", construct_ssa=True, optimize=True, abi=True)
        assert [p.name for p in pipeline.passes] == [
            "construct-ssa", "value-number", "fold-copies", "remove-dead-code",
            "calling-convention",
            "isolate", "interference", "coalesce", "materialize",
        ]

    def test_full_pipeline_preserves_behaviour_from_non_ssa_input(self):
        reference = run_function(non_ssa_max_function(), [3, 9]).observable()
        function = non_ssa_max_function()
        result = Pipeline.for_engine(
            "us_iii", construct_ssa=True, optimize=True, abi=True
        ).run(function)
        assert run_function(function, [3, 9]).observable() == reference
        assert not any(block.phis for block in function)
        assert set(result.pass_seconds) == {
            "construct-ssa", "value-number", "fold-copies", "remove-dead-code",
            "calling-convention",
            "isolate", "interference", "coalesce", "materialize",
        }

    def test_explicit_frequencies_are_honoured(self):
        function = loop_function()
        frequencies = {label: 2.5 for label in function.blocks}
        result = destruct_ssa(function, engine_by_name("us_iii"), frequencies=frequencies)
        if result.stats.remaining_copies:
            assert result.stats.dynamic_copy_cost == pytest.approx(
                2.5 * result.stats.remaining_copies
            )


class TestSession:
    def test_translate_many_matches_per_function_runs(self):
        programs = generated_programs(count=4, size=30)
        config = engine_by_name("us_iii")

        session = Session(config)
        batch = [program.copy() for program in programs]
        results = session.translate_many(batch)

        assert session.functions_translated == len(programs)
        for program, result in zip(programs, results):
            solo = program.copy()
            solo_result = destruct_ssa(solo, config)
            assert format_function(result.function) == format_function(solo)
            assert _stat_dict(result.stats) == _stat_dict(solo_result.stats)
            assert result.tracker.total() == solo_result.tracker.total()

        assert session.total_memory_bytes() == sum(r.tracker.total() for r in results)
        assert session.peak_memory_bytes() == max(r.tracker.peak() for r in results)
        assert session.total_seconds == pytest.approx(
            sum(r.stats.elapsed_seconds for r in results)
        )

    def test_session_accepts_engine_names_and_builders(self):
        assert Session("us_i").config.name == "us_i"
        built = Session(EngineConfig.builder("us_i").liveness("sets")).config
        assert built.liveness == "sets"

    def test_session_with_front_half_translates_non_ssa_input(self):
        reference = run_function(non_ssa_max_function(), [7, 2]).observable()
        session = Session("us_i", construct_ssa=True, optimize=True)
        function = non_ssa_max_function()
        session.translate_many([function])
        assert run_function(function, [7, 2]).observable() == reference
