"""The seeded-fault harness: every deliberate corruption must be detected."""

import pytest

from repro.outofssa.config import ENGINE_CONFIGURATIONS
from repro.verify.faults import CLEAN_PROGRAMS, SEEDED_FAULTS, run_clean


class TestSeededFaults:
    @pytest.mark.parametrize(
        "fault", SEEDED_FAULTS, ids=[fault.name for fault in SEEDED_FAULTS]
    )
    def test_fault_is_detected_with_expected_code(self, fault):
        report = fault.run()
        assert fault.expected_code in report.codes(), (
            f"{fault.name}: expected {fault.expected_code}, report:\n{report.render()}"
        )
        assert not report.ok

    def test_catalogue_covers_every_check_family(self):
        expected = {fault.expected_code for fault in SEEDED_FAULTS}
        # One structural, one SSA, one CSSA, class checks, incremental
        # cross-checks, residue and sequentialization/behaviour checks.
        for family in ("V107", "V202", "V301", "V401", "V402", "V403",
                       "V451", "V452", "V501", "V502", "V503", "V504"):
            assert family in expected


class TestCleanPipeline:
    @pytest.mark.parametrize("engine", [e.name for e in ENGINE_CONFIGURATIONS])
    def test_gallery_is_quiet_at_full(self, engine):
        for maker in CLEAN_PROGRAMS:
            report = run_clean(maker(), engine)
            assert report.ok and report.diagnostics == [], (
                f"{engine}/{maker.__name__}: {report.render()}"
            )
