"""Tests for SSA construction, copy folding, value numbering and cleanups."""

import pytest

from repro.interp import run_function
from repro.ir.builder import FunctionBuilder
from repro.ir.instructions import Copy, Op, Variable
from repro.ir.validate import validate_ssa
from repro.ssa.cleanup import remove_dead_code, remove_trivial_phis
from repro.ssa.construction import construct_ssa
from repro.ssa.copy_folding import fold_copies, value_number
from repro.ssa.cssa import is_conventional
from tests.helpers import assert_same_behaviour, non_ssa_max_function


def count_copies(function):
    return sum(1 for block in function for instr in block.body if isinstance(instr, Copy))


class TestConstructSSA:
    def test_max_function(self):
        original = non_ssa_max_function()
        function = non_ssa_max_function()
        construct_ssa(function)
        validate_ssa(function)
        # A φ is needed at the join block for m.
        assert function.blocks["done"].phis
        assert_same_behaviour(original, function, [(3, 7), (9, 2), (5, 5)])

    def test_loop_accumulator(self):
        fb = FunctionBuilder("acc", params=("n",))
        entry, header, body, done = fb.blocks("entry", "header", "body", "done")
        with fb.at(entry):
            fb.copy("s", 0)
            fb.copy("i", 0)
            fb.jump(header)
        with fb.at(header):
            c = fb.op("cmp_lt", "i", "n", name="c")
            fb.branch(c, body, done)
        with fb.at(body):
            fb.op("add", "s", "i", name="s")
            fb.op("add", "i", 1, name="i")
            fb.jump(header)
        with fb.at(done):
            fb.print("s")
            fb.ret("s")
        original = fb.finish()

        function = original.copy()
        construct_ssa(function)
        validate_ssa(function)
        # φs for i and s at the loop header.
        assert len(function.blocks["header"].phis) == 2
        assert_same_behaviour(original, function, [(0,), (1,), (5,)])

    def test_freshly_constructed_ssa_is_conventional(self):
        function = non_ssa_max_function()
        construct_ssa(function)
        assert is_conventional(function)

    def test_rejects_existing_phis(self):
        from tests.helpers import loop_function

        with pytest.raises(ValueError):
            construct_ssa(loop_function())

    def test_variable_live_on_one_path_only(self):
        fb = FunctionBuilder("partial", params=("c",))
        entry, then, join = fb.blocks("entry", "then", "join")
        with fb.at(entry):
            fb.copy("x", 1)
            fb.branch("c", then, join)
        with fb.at(then):
            fb.copy("x", 2)
            fb.jump(join)
        with fb.at(join):
            fb.print("x")
            fb.ret("x")
        original = fb.finish()
        function = original.copy()
        construct_ssa(function)
        validate_ssa(function)
        assert_same_behaviour(original, function, [(0,), (1,)])


class TestCopyFolding:
    def test_folds_and_preserves_semantics(self):
        fb = FunctionBuilder("fold", params=("p",))
        entry = fb.block("entry")
        with fb.at(entry):
            a = fb.op("add", "p", 2, name="a")
            fb.copy("b", a)
            fb.copy("c", "b")
            r = fb.op("mul", "c", "b", name="r")
            fb.print(r)
            fb.ret(r)
        original = fb.finish()
        function = original.copy()
        removed = fold_copies(function)
        assert removed == 2
        assert count_copies(function) == 0
        assert_same_behaviour(original, function, [(1,), (4,)])

    def test_predicate_can_keep_copies(self):
        fb = FunctionBuilder("keep", params=("p",))
        entry = fb.block("entry")
        with fb.at(entry):
            a = fb.op("add", "p", 2, name="a")
            fb.copy("b", a)
            fb.print("b")
            fb.ret("b")
        function = fb.finish()
        removed = fold_copies(function, should_fold=lambda copy: False)
        assert removed == 0
        assert count_copies(function) == 1

    def test_does_not_fold_volatile_counters(self):
        from repro.gallery import figure2_branch_with_decrement

        function = figure2_branch_with_decrement()
        fold_copies(function)
        # The counter initialisation copy u = n must survive.
        assert any(
            isinstance(instr, Copy) and instr.dst == Variable("u")
            for instr in function.blocks["entry"].body
        )

    def test_phi_arguments_rewritten(self):
        original = non_ssa_max_function()
        function = non_ssa_max_function()
        construct_ssa(function)
        fold_copies(function)
        validate_ssa(function)
        assert count_copies(function) == 0
        assert_same_behaviour(original, function, [(3, 7), (9, 2)])


class TestValueNumbering:
    def test_removes_redundant_computation(self):
        fb = FunctionBuilder("vn", params=("p",))
        entry = fb.block("entry")
        with fb.at(entry):
            x = fb.op("add", "p", 1, name="x")
            y = fb.op("add", "p", 1, name="y")
            z = fb.op("add", 1, "p", name="z")     # commutative duplicate
            r = fb.op("add", x, y, name="r")
            r2 = fb.op("add", r, z, name="r2")
            fb.print(r2)
            fb.ret(r2)
        original = fb.finish()
        function = original.copy()
        removed = value_number(function)
        assert removed == 2
        assert_same_behaviour(original, function, [(0,), (3,)])

    def test_respects_dominance(self):
        fb = FunctionBuilder("vn2", params=("c", "p"))
        entry, left, right, join = fb.blocks("entry", "left", "right", "join")
        with fb.at(entry):
            fb.branch("c", left, right)
        with fb.at(left):
            l = fb.op("add", "p", 1, name="l")
            fb.print(l)
            fb.jump(join)
        with fb.at(right):
            r = fb.op("add", "p", 1, name="r")
            fb.print(r)
            fb.jump(join)
        with fb.at(join):
            j = fb.op("add", "p", 1, name="j")
            fb.print(j)
            fb.ret(j)
        original = fb.finish()
        function = original.copy()
        removed = value_number(function)
        # l and r do not dominate each other: neither may be removed; j is not
        # dominated by either, so it must stay as well.
        assert removed == 0
        assert_same_behaviour(original, function, [(0, 4), (1, 4)])

    def test_skips_calls_and_volatile(self):
        fb = FunctionBuilder("vn3", params=("p",))
        entry = fb.block("entry")
        with fb.at(entry):
            a = fb.call("get", "p", name="a")
            b = fb.call("get", "p", name="b")
            r = fb.op("add", a, b, name="r")
            fb.ret(r)
        function = fb.finish()
        assert value_number(function) == 0


class TestCleanup:
    def test_remove_dead_code(self):
        fb = FunctionBuilder("dead", params=("p",))
        entry = fb.block("entry")
        with fb.at(entry):
            fb.op("add", "p", 1, name="unused")
            fb.copy("alive", "p")
            fb.print("alive")
            fb.ret("alive")
        function = fb.finish()
        removed = remove_dead_code(function)
        assert removed == 1
        assert all(instr.defs() != [Variable("unused")] for instr in function.blocks["entry"].body)

    def test_remove_dead_code_is_transitive(self):
        fb = FunctionBuilder("dead2", params=("p",))
        entry = fb.block("entry")
        with fb.at(entry):
            a = fb.op("add", "p", 1, name="a")
            fb.op("add", a, 1, name="b")     # b dead, then a becomes dead
            fb.ret("p")
        function = fb.finish()
        assert remove_dead_code(function) == 2

    def test_calls_and_prints_are_kept(self):
        fb = FunctionBuilder("effects", params=("p",))
        entry = fb.block("entry")
        with fb.at(entry):
            fb.call("effectful", "p")
            fb.print("p")
            fb.ret()
        function = fb.finish()
        assert remove_dead_code(function) == 0

    def test_remove_trivial_phis(self):
        fb = FunctionBuilder("trivial", params=("c",))
        entry, a, b, join = fb.blocks("entry", "a", "b", "join")
        with fb.at(entry):
            x = fb.const(7, name="x")
            fb.branch("c", a, b)
        with fb.at(a):
            fb.jump(join)
        with fb.at(b):
            fb.jump(join)
        with fb.at(join):
            fb.phi("y", a=x, b=x)
            fb.print("y")
            fb.ret("y")
        original = fb.finish()
        function = original.copy()
        removed = remove_trivial_phis(function)
        assert removed == 1
        assert not function.blocks["join"].phis
        assert_same_behaviour(original, function, [(0,), (1,)])
