"""Shared helpers for the test-suite: small hand-built programs and checks."""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.bench.generator import GeneratorConfig, generate_ssa_program
from repro.gallery import (
    figure1_branch_use,
    figure2_branch_with_decrement,
    figure3_swap_problem,
    figure4_lost_copy_problem,
)
from repro.interp import run_function
from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function


def diamond_function() -> Function:
    """entry -> (left | right) -> join, one φ at the join."""
    fb = FunctionBuilder("diamond", params=("c",))
    entry, left, right, join = fb.blocks("entry", "left", "right", "join")
    with fb.at(entry):
        fb.branch("c", left, right)
    with fb.at(left):
        a = fb.const(1, name="a")
        fb.jump(join)
    with fb.at(right):
        b = fb.const(2, name="b")
        fb.jump(join)
    with fb.at(join):
        x = fb.phi("x", left=a, right=b)
        fb.print(x)
        fb.ret(x)
    return fb.finish()


def loop_function() -> Function:
    """A simple counted loop summing its index (SSA form)."""
    fb = FunctionBuilder("loop_sum", params=("n",))
    entry, header, body, exit_block = fb.blocks("entry", "header", "body", "exit")
    with fb.at(entry):
        i0 = fb.const(0, name="i0")
        s0 = fb.const(0, name="s0")
        fb.jump(header)
    with fb.at(header):
        i1 = fb.phi("i1", entry=i0, body="i2")
        s1 = fb.phi("s1", entry=s0, body="s2")
        cond = fb.op("cmp_lt", i1, "n", name="cond")
        fb.branch(cond, body, exit_block)
    with fb.at(body):
        s2 = fb.op("add", s1, i1, name="s2")
        i2 = fb.op("add", i1, 1, name="i2")
        fb.jump(header)
    with fb.at(exit_block):
        fb.print(s1)
        fb.ret(s1)
    return fb.finish()


def straight_line_copies() -> Function:
    """The paper's §III-A example: b = a; c = a; with all three live after."""
    fb = FunctionBuilder("copies", params=("p",))
    entry = fb.block("entry")
    with fb.at(entry):
        a = fb.op("add", "p", 1, name="a")
        fb.copy("b", a)
        fb.copy("c", a)
        fb.print(a)
        fb.print("b")
        fb.print("c")
        fb.ret("c")
    return fb.finish()


def non_ssa_max_function() -> Function:
    """A non-SSA function (multiple assignments to ``m``) for SSA construction."""
    fb = FunctionBuilder("maximum", params=("a", "b"))
    entry, bigger, done = fb.blocks("entry", "bigger", "done")
    with fb.at(entry):
        m = fb.copy("m", "a")
        cond = fb.op("cmp_lt", "a", "b", name="cond")
        fb.branch(cond, bigger, done)
    with fb.at(bigger):
        fb.copy("m", "b")
        fb.jump(done)
    with fb.at(done):
        fb.print("m")
        fb.ret("m")
    return fb.finish()


GALLERY_PROGRAMS: List[Tuple[str, object, Tuple[int, ...]]] = [
    ("figure1_taken", figure1_branch_use, (1,)),
    ("figure1_not_taken", figure1_branch_use, (0,)),
    ("figure2", figure2_branch_with_decrement, (4,)),
    ("swap", figure3_swap_problem, (5, 11, 22)),
    ("lost_copy", figure4_lost_copy_problem, (6,)),
]


def generated_programs(count: int = 6, size: int = 35, abi_every: int = 3):
    """A deterministic batch of generated SSA programs for integration tests."""
    programs = []
    for seed in range(count):
        config = GeneratorConfig(
            seed=seed + 100,
            name=f"gen{seed}",
            size=size,
            apply_abi=(abi_every and seed % abi_every == 0),
        )
        programs.append(generate_ssa_program(config))
    return programs


def observable(function: Function, args: Sequence[int]):
    """Interpret ``function`` and return its observable behaviour."""
    return run_function(function, args).observable()


def assert_same_behaviour(before: Function, after: Function, arg_sets) -> None:
    """Both functions must have identical observable behaviour on every arg set."""
    for args in arg_sets:
        expected = observable(before, args)
        actual = observable(after, args)
        assert actual == expected, (
            f"behaviour diverged on args {args}: expected {expected}, got {actual}"
        )
