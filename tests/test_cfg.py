"""Tests for CFG traversals, dominance, loops, frequencies and critical edges."""

import pytest

from repro.cfg.critical_edges import critical_edges, split_critical_edges
from repro.cfg.dominance import DominatorTree, dominance_frontiers, iterated_dominance_frontier
from repro.cfg.frequency import estimate_block_frequencies
from repro.cfg.loops import loop_nesting_depths, natural_loops
from repro.cfg.traversal import depth_first_order, postorder, reachable_blocks, reverse_postorder
from repro.ir.builder import FunctionBuilder
from repro.ir.validate import validate_function
from tests.helpers import diamond_function, loop_function


def nested_loop_function():
    """Two nested loops plus an if inside the inner loop."""
    fb = FunctionBuilder("nested", params=("n",))
    entry, oh, ob, ih, ib, then, join, iex, oex = fb.blocks(
        "entry", "outer_header", "outer_body", "inner_header", "inner_body",
        "then", "join", "inner_exit", "outer_exit",
    )
    with fb.at(entry):
        i0 = fb.const(0, name="i0")
        fb.jump(oh)
    with fb.at(oh):
        i1 = fb.phi("i1", entry=i0, inner_exit="i2")
        c1 = fb.op("cmp_lt", i1, "n", name="c1")
        fb.branch(c1, ob, oex)
    with fb.at(ob):
        j0 = fb.const(0, name="j0")
        fb.jump(ih)
    with fb.at(ih):
        j1 = fb.phi("j1", outer_body=j0, join="j2")
        c2 = fb.op("cmp_lt", j1, 3, name="c2")
        fb.branch(c2, ib, iex)
    with fb.at(ib):
        c3 = fb.op("cmp_eq", j1, 1, name="c3")
        fb.branch(c3, then, join)
    with fb.at(then):
        fb.print(j1)
        fb.jump(join)
    with fb.at(join):
        j2 = fb.op("add", j1, 1, name="j2")
        fb.jump(ih)
    with fb.at(iex):
        i2 = fb.op("add", i1, 1, name="i2")
        fb.jump(oh)
    with fb.at(oex):
        fb.ret(i1)
    function = fb.finish()
    validate_function(function)
    return function


class TestTraversal:
    def test_dfs_starts_at_entry_and_covers_reachable(self):
        function = nested_loop_function()
        order = depth_first_order(function)
        assert order[0] == "entry"
        assert set(order) == set(function.blocks)

    def test_unreachable_blocks_excluded(self):
        function = diamond_function()
        dead = function.add_block("dead")
        from repro.ir.instructions import Return

        dead.set_terminator(Return(None))
        assert "dead" not in reachable_blocks(function)
        assert "dead" not in reverse_postorder(function)

    def test_reverse_postorder_is_topological_on_acyclic_part(self):
        function = diamond_function()
        order = reverse_postorder(function)
        position = {label: i for i, label in enumerate(order)}
        assert position["entry"] < position["left"]
        assert position["entry"] < position["right"]
        assert position["left"] < position["join"]
        assert position["right"] < position["join"]

    def test_postorder_reverse_relationship(self):
        function = nested_loop_function()
        assert list(reversed(postorder(function))) == reverse_postorder(function)


def brute_force_dominators(function, target):
    """Blocks that appear on every entry->target path (exponential reference)."""
    entry = function.entry_label
    all_blocks = set(function.blocks)
    dominators = set(all_blocks)

    def paths_avoiding(avoid):
        seen = set()
        stack = [entry]
        while stack:
            label = stack.pop()
            if label == avoid or label in seen:
                continue
            seen.add(label)
            stack.extend(function.successors(label))
        return seen

    result = set()
    for candidate in all_blocks:
        if candidate == target:
            result.add(candidate)
            continue
        if target not in paths_avoiding(candidate):
            result.add(candidate)
    return result


class TestDominance:
    def test_idoms_on_diamond(self):
        function = diamond_function()
        domtree = DominatorTree(function)
        assert domtree.idom["left"] == "entry"
        assert domtree.idom["right"] == "entry"
        assert domtree.idom["join"] == "entry"
        assert domtree.idom["entry"] is None

    def test_dominates_matches_brute_force(self):
        function = nested_loop_function()
        domtree = DominatorTree(function)
        for target in function.blocks:
            expected = brute_force_dominators(function, target)
            actual = {label for label in function.blocks if domtree.dominates(label, target)}
            assert actual == expected, f"dominators of {target}"

    def test_dominators_of_chain(self):
        function = nested_loop_function()
        domtree = DominatorTree(function)
        chain = domtree.dominators_of("join")
        assert chain[0] == "join" and chain[-1] == "entry"
        assert "inner_header" in chain and "outer_header" in chain

    def test_preorder_ancestor_property(self):
        function = nested_loop_function()
        domtree = DominatorTree(function)
        for a in function.blocks:
            for b in function.blocks:
                expected = domtree.dominates(a, b)
                by_numbers = (
                    domtree._pre[a] <= domtree._pre[b] and domtree._post[b] <= domtree._post[a]
                )
                assert expected == by_numbers

    def test_back_edges(self):
        function = loop_function()
        domtree = DominatorTree(function)
        assert domtree.is_back_edge("body", "header")
        assert not domtree.is_back_edge("entry", "header")

    def test_dominance_frontiers_diamond(self):
        function = diamond_function()
        frontiers = dominance_frontiers(function)
        assert frontiers["left"] == {"join"}
        assert frontiers["right"] == {"join"}
        assert frontiers["entry"] == set()

    def test_dominance_frontiers_loop(self):
        function = loop_function()
        frontiers = dominance_frontiers(function)
        assert frontiers["body"] == {"header"}
        assert frontiers["header"] == {"header"}

    def test_iterated_dominance_frontier(self):
        function = nested_loop_function()
        result = iterated_dominance_frontier(function, ["join", "then"])
        assert "inner_header" in result
        assert "outer_header" in result


class TestLoops:
    def test_natural_loops_and_nesting(self):
        function = nested_loop_function()
        loops = natural_loops(function)
        headers = {loop.header for loop in loops}
        assert headers == {"outer_header", "inner_header"}
        by_header = {loop.header: loop for loop in loops}
        assert by_header["inner_header"].depth == 2
        assert by_header["outer_header"].depth == 1
        assert by_header["inner_header"].parent is by_header["outer_header"]
        assert "inner_body" in by_header["inner_header"].blocks
        assert "inner_body" in by_header["outer_header"].blocks

    def test_nesting_depths(self):
        function = nested_loop_function()
        depths = loop_nesting_depths(function)
        assert depths["entry"] == 0
        assert depths["outer_body"] == 1
        assert depths["join"] == 2

    def test_no_loops(self):
        assert natural_loops(diamond_function()) == []


class TestFrequencies:
    def test_inner_blocks_weigh_more(self):
        function = nested_loop_function()
        freqs = estimate_block_frequencies(function)
        assert freqs["join"] > freqs["outer_body"] > freqs["entry"]

    def test_branch_splits_probability(self):
        function = diamond_function()
        freqs = estimate_block_frequencies(function)
        assert freqs["left"] == pytest.approx(freqs["right"])
        assert freqs["left"] < freqs["entry"]
        assert freqs["join"] == pytest.approx(freqs["entry"])


class TestCriticalEdges:
    def test_detection(self):
        function = loop_function()
        edges = critical_edges(function)
        assert ("header", "exit") not in edges  # exit has a single predecessor
        # The back edge header->body is not critical either (body has 1 pred);
        # build a function with a genuine critical edge instead.
        fb = FunctionBuilder("crit", params=("c",))
        a, b, c = fb.blocks("a", "b", "c")
        with fb.at(a):
            fb.branch("c", b, c)
        with fb.at(b):
            fb.jump(c)
        with fb.at(c):
            fb.ret()
        function = fb.finish()
        assert critical_edges(function) == [("a", "c")]

    def test_splitting_removes_critical_edges(self):
        from repro.gallery import figure4_lost_copy_problem

        function = figure4_lost_copy_problem()
        assert critical_edges(function)
        inserted = split_critical_edges(function)
        assert inserted
        validate_function(function)
        assert critical_edges(function) == []
