"""Unit tests for blocks, functions, the builder and program positions."""

import pytest

from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.instructions import Copy, Jump, Op, ParallelCopy, Phi, Variable
from repro.ir.positions import (
    ENTRY_PCOPY_INDEX,
    PHI_INDEX,
    ProgramPoint,
    block_schedule,
    definition_points,
    edge_index,
    exit_pcopy_index,
    terminator_index,
    use_points,
)
from tests.helpers import diamond_function, loop_function


class TestBasicBlock:
    def test_append_rejects_phis_and_terminators(self):
        fb = FunctionBuilder("f")
        block = fb.block("entry")
        with pytest.raises(TypeError):
            block.append(Phi(Variable("x")))
        with pytest.raises(TypeError):
            block.append(Jump("entry"))

    def test_pcopy_slots(self):
        fb = FunctionBuilder("f")
        block = fb.block("entry")
        assert block.get_entry_pcopy() is None
        entry_copy = block.get_entry_pcopy(create=True)
        exit_copy = block.get_exit_pcopy(create=True)
        assert block.get_entry_pcopy() is entry_copy
        assert block.get_exit_pcopy() is exit_copy
        block.drop_empty_pcopies()
        assert block.get_entry_pcopy() is None and block.get_exit_pcopy() is None

    def test_instruction_order(self):
        function = diamond_function()
        join = function.blocks["join"]
        join.get_entry_pcopy(create=True).add(Variable("t"), Variable("x"))
        kinds = [type(instr).__name__ for instr in join.instructions()]
        assert kinds[0] == "Phi"
        assert kinds[1] == "ParallelCopy"
        assert kinds[-1] == "Return"


class TestFunction:
    def test_duplicate_block_label_rejected(self):
        function = Function("f")
        function.add_block("entry")
        with pytest.raises(ValueError):
            function.add_block("entry")

    def test_predecessors_and_edges(self):
        function = diamond_function()
        assert set(function.predecessors("join")) == {"left", "right"}
        assert function.successors("entry") == ["left", "right"]
        assert ("entry", "left") in function.edges()

    def test_unknown_branch_target_raises(self):
        fb = FunctionBuilder("f")
        entry = fb.block("entry")
        with fb.at(entry):
            fb.jump("missing")
        with pytest.raises(KeyError):
            fb.finish().predecessors("entry")

    def test_variables_are_ordered_and_complete(self):
        function = loop_function()
        names = [v.name for v in function.variables()]
        assert names[0] == "n"  # parameter first
        assert {"i0", "i1", "i2", "s0", "s1", "s2", "cond"} <= set(names)

    def test_new_variable_is_fresh(self):
        function = loop_function()
        new = function.new_variable("i1")
        assert new.name not in {v.name for v in loop_function().variables()}
        another = function.new_variable("i1")
        assert another != new

    def test_new_label_is_fresh(self):
        function = diamond_function()
        label = function.new_label("join")
        assert label not in function.blocks

    def test_copy_is_deep_and_equivalent(self):
        function = loop_function()
        clone = function.copy()
        assert clone is not function
        from repro.ir.printer import format_function

        assert format_function(clone) == format_function(function)
        # Mutating the clone does not affect the original.
        clone.blocks["body"].body.clear()
        assert len(function.blocks["body"].body) == 2

    def test_split_edge_rewrites_phis(self):
        function = diamond_function()
        new_block = function.split_edge("left", "join")
        phi = function.blocks["join"].phis[0]
        assert new_block.label in phi.args
        assert "left" not in phi.args
        assert function.successors("left") == [new_block.label]
        assert function.successors(new_block.label) == ["join"]

    def test_pinning(self):
        function = diamond_function()
        var = Variable("a")
        function.pin(var, "R0")
        assert function.pinned[var] == "R0"


class TestBuilder:
    def test_requires_current_block(self):
        fb = FunctionBuilder("f")
        fb.block("entry")
        with pytest.raises(RuntimeError):
            fb.const(1)

    def test_builder_produces_valid_function(self):
        from repro.ir.validate import validate_function

        validate_function(diamond_function())
        validate_function(loop_function())


class TestPositions:
    def test_block_schedule_indices(self):
        function = diamond_function()
        join = function.blocks["join"]
        schedule = block_schedule(join)
        indices = [index for index, _ in schedule]
        assert indices[0] == PHI_INDEX
        assert indices[-1] == terminator_index(join)
        assert exit_pcopy_index(join) < terminator_index(join) < edge_index(join)
        assert ENTRY_PCOPY_INDEX == 1

    def test_definition_points_include_params(self):
        function = loop_function()
        points = definition_points(function)
        param = function.params[0]
        assert points[param].block == "entry" and points[param].index == -1
        assert points[Variable("i1")].index == PHI_INDEX

    def test_phi_uses_attributed_to_predecessor_edges(self):
        function = loop_function()
        uses = use_points(function)
        i2_uses = uses[Variable("i2")]
        assert any(
            point.block == "body" and point.index == edge_index(function.blocks["body"])
            for point in i2_uses
        )

    def test_point_dominance_within_block(self):
        from repro.cfg.dominance import DominatorTree

        function = loop_function()
        domtree = DominatorTree(function)
        early = ProgramPoint("header", 0)
        late = ProgramPoint("header", 3)
        assert early.dominates(late, domtree)
        assert not late.strictly_before(early, domtree)
        other = ProgramPoint("body", 2)
        assert early.dominates(other, domtree)
        assert not other.dominates(early, domtree)
