"""Tests for the staged static-analysis (verification) framework."""

import json

import pytest

from repro.gallery import figure3_swap_problem, figure4_lost_copy_problem
from repro.ir import format_function, text_digest
from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.outofssa.config import ENGINE_CONFIGURATIONS, EngineConfig
from repro.pipeline import Pipeline
from repro.verify import CODE_CATALOGUE, Diagnostic, Severity, VerifyReport
from repro.verify.checks import (
    check_no_ssa_residue,
    check_ssa,
    check_structure,
)
from repro.verify.diagnostics import diagnostic
from tests.helpers import GALLERY_PROGRAMS, diamond_function, loop_function


# --------------------------------------------------------------------------- model
class TestDiagnosticModel:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown diagnostic code"):
            Diagnostic(code="V999", message="nope", severity=Severity.ERROR)

    def test_severity_defaults_from_catalogue(self):
        error = diagnostic("V101", "function has no blocks", function="f")
        warning = diagnostic("V204", "unreachable uses", function="f", block="dead")
        assert error.severity is Severity.ERROR and error.is_error
        assert warning.severity is Severity.WARNING and not warning.is_error

    def test_anchor_and_payload(self):
        diag = diagnostic("V103", "missing terminator", function="f", block="b")
        assert diag.anchor() == "f:b"
        payload = diag.to_payload()
        assert payload["code"] == "V103" and payload["severity"] == "error"

    def test_every_catalogue_entry_has_a_description(self):
        for code, (severity, description) in CODE_CATALOGUE.items():
            assert code.startswith("V") and description
            assert severity in (Severity.WARNING, Severity.ERROR)

    def test_report_ok_ignores_warnings(self):
        report = VerifyReport(function="f", level="fast")
        report.extend([diagnostic("V204", "w", function="f", block="dead")])
        assert report.ok and len(report.warnings) == 1
        report.extend([diagnostic("V101", "e", function="f")])
        assert not report.ok and len(report.errors) == 1
        assert "V101" in report.codes() and "V204" in report.codes()

    def test_report_render_mentions_verdict(self):
        report = VerifyReport(function="f", level="full")
        assert "ok" in report.render()
        report.extend([diagnostic("V101", "no blocks", function="f")])
        assert "V101" in report.render()


# --------------------------------------------------------------------------- checkers
class TestCheckers:
    def test_structure_clean_on_gallery(self):
        for _name, maker, _args in GALLERY_PROGRAMS:
            assert check_structure(maker()) == []

    def test_structure_flags_empty_function(self):
        diags = check_structure(Function("empty"))
        assert [d.code for d in diags] == ["V101"]

    def test_ssa_clean_on_gallery(self):
        assert check_ssa(diamond_function()) == []
        assert check_ssa(loop_function()) == []

    def test_unreachable_use_is_a_warning(self):
        fb = FunctionBuilder("f")
        entry, dead = fb.blocks("entry", "dead")
        with fb.at(entry):
            fb.ret()
        with fb.at(dead):
            fb.print("ghost")  # never defined, but unreachable
            fb.ret()
        diags = check_ssa(fb.finish())
        assert [d.code for d in diags] == ["V204"]
        assert all(not d.is_error for d in diags)

    def test_residue_clean_after_translation(self):
        function = figure4_lost_copy_problem()
        Pipeline.for_engine("us_i").run(function)
        assert check_no_ssa_residue(function) == []

    def test_residue_flags_remaining_phi(self):
        function = figure4_lost_copy_problem()
        codes = {d.code for d in check_no_ssa_residue(function)}
        assert "V501" in codes


# --------------------------------------------------------------------------- pipeline wiring
class TestPipelineVerification:
    def test_off_by_default(self):
        result = Pipeline.for_engine("us_i").run(figure3_swap_problem())
        assert result.verify_report is None
        assert result.stats.verify_ms == 0.0

    @pytest.mark.parametrize("level", ["fast", "full"])
    def test_checked_run_is_clean_and_timed(self, level):
        config = EngineConfig.builder("us_i").verify(level).build()
        result = Pipeline.for_engine(config).run(figure3_swap_problem())
        report = result.verify_report
        assert report is not None and report.ok
        assert report.diagnostics == []
        assert result.stats.verify_ms > 0.0
        assert result.stats.verify_diagnostics == 0
        assert "output" in report.stages_run

    def test_full_level_runs_every_stage(self):
        config = EngineConfig.builder("us_i").verify("full").build()
        report = Pipeline.for_engine(config).run(figure3_swap_problem()).verify_report
        for stage in ("input", "isolate", "coalesce", "output"):
            assert stage in report.stages_run

    def test_verify_level_excluded_from_fingerprint(self):
        plain = EngineConfig.builder("us_i").build()
        checked = EngineConfig.builder("us_i").verify("full").build()
        assert plain.fingerprint() == checked.fingerprint()

    def test_checked_run_does_not_perturb_counters_or_output(self):
        """The checkers snapshot/restore instrumentation counters, so a
        checked translation reports the same stats and emits the same IR
        as an unchecked one."""
        plain = Pipeline.for_engine("us_i").run(figure3_swap_problem())
        checked_config = EngineConfig.builder("us_i").verify("full").build()
        checked = Pipeline.for_engine(checked_config).run(figure3_swap_problem())
        assert format_function(plain.function) == format_function(checked.function)
        assert plain.stats.pair_queries == checked.stats.pair_queries
        assert plain.stats.intersection_queries == checked.stats.intersection_queries
        assert plain.stats.class_row_checks == checked.stats.class_row_checks

    def test_bogus_level_rejected(self):
        with pytest.raises(ValueError, match="unknown verify level"):
            EngineConfig.builder("us_i").verify("paranoid").build()


# --------------------------------------------------------------------------- engine sweep
class TestCleanSweep:
    @pytest.mark.parametrize("engine", [e.name for e in ENGINE_CONFIGURATIONS])
    @pytest.mark.parametrize("backend", ["matrix", "query", "incremental"])
    def test_every_engine_and_backend_is_quiet(self, engine, backend):
        config = (
            EngineConfig.builder(engine)
            .interference(backend)
            .verify("full")
            .build()
        )
        for _name, maker, _args in GALLERY_PROGRAMS:
            report = Pipeline.for_engine(config).run(maker()).verify_report
            assert report.ok and report.diagnostics == [], (
                f"{engine}/{backend}: {report.render()}"
            )

    @pytest.mark.parametrize("engine", [e.name for e in ENGINE_CONFIGURATIONS])
    @pytest.mark.parametrize("backend", ["matrix", "query", "incremental"])
    def test_stress_corpus_is_quiet(self, engine, backend):
        """The acceptance sweep: a (φ-free, non-SSA) stress-corpus function
        translates diagnostic-free at full level under every engine ×
        interference backend."""
        from repro.bench.corpus import CorpusSpec, generate_stress_cfg

        spec = CorpusSpec(name="verify_sweep", seed=3, blocks=120,
                          loop_depth=3, variables=8)
        config = (
            EngineConfig.builder(engine)
            .interference(backend)
            .verify("full")
            .build()
        )
        report = Pipeline.for_engine(config).run(generate_stress_cfg(spec)).verify_report
        assert report.ok and report.diagnostics == [], (
            f"{engine}/{backend}: {report.render()}"
        )


# --------------------------------------------------------------------------- CLI
@pytest.fixture()
def swap_file(tmp_path):
    path = tmp_path / "swap.ir"
    path.write_text(format_function(figure3_swap_problem()))
    return str(path)


@pytest.fixture()
def broken_file(tmp_path):
    path = tmp_path / "broken.ir"
    path.write_text(
        "function f() {\n"
        "  entry:\n"
        "    jump nowhere\n"
        "}\n"
    )
    return str(path)


class TestVerifyCommand:
    def test_verify_clean_file(self, swap_file, capsys):
        from repro.cli import main

        assert main(["verify", swap_file]) == 0
        assert "ok" in capsys.readouterr().out

    def test_verify_gallery_json(self, capsys):
        from repro.cli import main

        assert main(["verify", "--gallery", "--json", "--level", "fast"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True and payload["level"] == "fast"
        assert len(payload["targets"]) >= 4
        for target in payload["targets"]:
            assert target["diagnostics"] == []

    def test_verify_broken_file_exits_nonzero(self, broken_file, capsys):
        from repro.cli import main

        assert main(["verify", broken_file]) == 1
        assert "V104" in capsys.readouterr().out

    def test_verify_no_targets_is_an_error(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="no targets"):
            main(["verify"])

    def test_translate_with_verify_stats(self, swap_file, capsys):
        from repro.cli import main

        assert main(["translate", swap_file, "--verify", "full", "--stats"]) == 0
        captured = capsys.readouterr()
        assert "phi" not in captured.out
        assert "verify time (ms)" in captured.err

    def test_translate_validates_by_default(self, broken_file):
        from repro.cli import main

        with pytest.raises(SystemExit, match="no-validate"):
            main(["translate", broken_file])

    def test_no_validate_escape_hatch_on_valid_input(self, swap_file, capsys):
        from repro.cli import main

        assert main(["translate", swap_file, "--no-validate"]) == 0
        assert "phi" not in capsys.readouterr().out


# --------------------------------------------------------------------------- service
class TestServiceVerify:
    def test_throwaway_verification_is_clean(self):
        from repro.service.translator import TranslationService

        service = TranslationService("us_i")
        text = format_function(figure3_swap_problem())
        payload = service.verify(text)
        assert payload["ok"] is True and payload["errors"] == 0
        assert payload["cached"] is False and payload["match"] is None

    def test_cached_translation_cross_checked(self):
        from repro.service.translator import TranslationService

        service = TranslationService("us_i")
        text = format_function(figure3_swap_problem())
        service.translate_text(text)
        payload = service.verify(text)
        assert payload["cached"] is True and payload["match"] is True
        assert payload["ok"] is True

    def test_tampered_cache_raises_v601(self):
        from repro.service.translator import TranslationService

        service = TranslationService("us_i")
        text = format_function(figure3_swap_problem())
        result = service.translate_text(text)
        entry = service.cache.lookup(result.digest, result.fingerprint)
        entry.ir_text = "function corrupt() {\n}\n"
        payload = service.verify(text)
        assert payload["match"] is False and payload["ok"] is False
        assert "V601" in [d["code"] for d in payload["diagnostics"]]

    def test_verification_does_not_touch_warm_state(self):
        from repro.service.translator import TranslationService

        service = TranslationService("us_i")
        text = format_function(figure3_swap_problem())
        service.translate_text(text)
        before = service.cache.stats().to_payload()["entries"]
        service.verify(text)
        assert service.cache.stats().to_payload()["entries"] == before
        assert service.translate_text(text).cached is True

    def test_bogus_level_rejected(self):
        from repro.service.translator import TranslationService

        with pytest.raises(ValueError, match="verify level"):
            TranslationService("us_i").verify("function f() {\n  entry:\n    ret\n}\n", level="bogus")

    def test_daemon_verify_verb(self):
        from repro.service import ServiceClient, TranslationServer

        server = TranslationServer(engine="us_i", shards=2)
        server.serve_in_background()
        try:
            text = format_function(figure3_swap_problem())
            with ServiceClient(port=server.port) as client:
                payload = client.verify(text, level="fast")
                assert payload["ok"] is True and payload["errors"] == 0
                assert payload["shard"] == payload["shard"]  # present
                client.translate(text)
                again = client.verify(text)
                assert again["cached"] is True and again["match"] is True
                bad = client.request("verify", ir=text, level="bogus")
                assert bad["ok"] is False and "level" in bad["error"]
                digest = text_digest(text)
                assert payload["digest"] == digest
        finally:
            server.shutdown()
            server.server_close()
