"""Parser / printer round-trip and error reporting tests."""

import pytest

from repro.ir.parser import ParseError, parse_function
from repro.ir.printer import format_function, format_instruction
from repro.ir.instructions import BrDec, Copy, ParallelCopy, Phi, Variable
from tests.helpers import GALLERY_PROGRAMS, diamond_function, loop_function


SAMPLE = """
function sample(a, b) {
  pin a R1
  entry:
    x = add a, b            # a comment
    y = copy x
    pcopy t <- y, u <- 3 @exit
    br x, body, done
  body:
    z = phi [entry: y, body: w]
    pcopy z2 <- z @entry
    w = mul z, 2
    r = call helper(w, 1)
    print r
    jump done
  done:
    s = phi [entry: x, body: w]
    brdec s, body, final
  final:
    ret
}
"""


class TestParser:
    def test_parses_sample(self):
        function = parse_function(SAMPLE)
        assert function.name == "sample"
        assert [p.name for p in function.params] == ["a", "b"]
        assert set(function.blocks) == {"entry", "body", "done", "final"}
        assert function.pinned[Variable("a")] == "R1"
        entry = function.blocks["entry"]
        assert isinstance(entry.exit_pcopy, ParallelCopy)
        body = function.blocks["body"]
        assert isinstance(body.entry_pcopy, ParallelCopy)
        assert isinstance(body.phis[0], Phi)
        assert isinstance(function.blocks["done"].terminator, BrDec)

    def test_round_trip_sample(self):
        function = parse_function(SAMPLE)
        text = format_function(function)
        again = parse_function(text)
        assert format_function(again) == text

    @pytest.mark.parametrize("name,maker,_args", GALLERY_PROGRAMS)
    def test_round_trip_gallery(self, name, maker, _args):
        function = maker()
        text = format_function(function)
        assert format_function(parse_function(text)) == text

    def test_round_trip_helpers(self):
        for function in (diamond_function(), loop_function()):
            text = format_function(function)
            assert format_function(parse_function(text)) == text

    def test_body_parallel_copy_round_trip(self):
        text = (
            "function f(a) {\n"
            "  entry:\n"
            "    x = add a, 1\n"
            "    pcopy y <- x, z <- a\n"
            "    ret y\n"
            "}\n"
        )
        function = parse_function(text)
        body = function.blocks["entry"].body
        assert any(isinstance(instr, ParallelCopy) for instr in body)
        assert function.blocks["entry"].exit_pcopy is None
        assert format_function(parse_function(format_function(function))) == format_function(function)

    @pytest.mark.parametrize(
        "bad_text,fragment",
        [
            ("x = add a, b", "expected function header"),
            ("function f() {\n  x = const 1\n}", "outside of a block"),
            ("function f() {\n  entry:\n    ???\n}", "unrecognised"),
            ("function f() {\n  entry:\n    br x, a\n}", "br expects"),
            ("function f() {\n  entry:\n    brdec 3, a, b\n}", "must be a variable"),
            ("function f() {\n  entry:\n    ret 1\n", "missing closing brace"),
            ("function f() {\n  entry:\n    pcopy a < b\n}", "bad parallel copy"),
            ("function f() {\n  entry:\n    x = phi [a]\n}", "bad phi argument"),
        ],
    )
    def test_parse_errors(self, bad_text, fragment):
        with pytest.raises(ParseError) as excinfo:
            parse_function(bad_text)
        assert fragment in str(excinfo.value)

    def test_constants_and_negative_numbers(self):
        function = parse_function(
            "function f() {\n  entry:\n    x = const -5\n    ret x\n}\n"
        )
        op = function.blocks["entry"].body[0]
        assert op.args[0].value == -5


class TestPrinter:
    def test_format_instruction_samples(self):
        assert format_instruction(Copy(Variable("a"), Variable("b"))) == "a = copy b"
        phi = Phi(Variable("x"), {"p": Variable("y")})
        assert format_instruction(phi) == "x = phi [p: y]"
        pcopy = ParallelCopy([(Variable("a"), 1)])
        assert format_instruction(pcopy) == "pcopy a <- 1"

    def test_empty_pcopies_not_printed(self):
        function = diamond_function()
        function.blocks["join"].get_entry_pcopy(create=True)
        text = format_function(function)
        assert "pcopy" not in text
