"""Tests for liveness analyses and live-range intersection."""

import pytest

from repro.ir.instructions import Variable
from repro.ir.positions import terminator_index
from repro.liveness.bitsets import BitLivenessSets
from repro.liveness.dataflow import LivenessSets
from repro.liveness.intersection import IntersectionOracle, live_ranges_intersect
from repro.liveness.livecheck import LivenessChecker
from repro.gallery import figure1_branch_use, figure3_swap_problem, figure4_lost_copy_problem
from tests.helpers import diamond_function, generated_programs, loop_function


def v(name: str) -> Variable:
    return Variable(name)


class TestLivenessSets:
    def test_loop_liveness(self):
        function = loop_function()
        liveness = LivenessSets(function)
        # φ-results are not live-in of their own block.
        assert not liveness.is_live_in("header", v("i1"))
        # φ-arguments are live-out of the predecessor they flow from.
        assert liveness.is_live_out("entry", v("i0"))
        assert liveness.is_live_out("body", v("i2"))
        # The loop-carried sum is live out of the header into the exit.
        assert liveness.is_live_in("exit", v("s1"))
        assert liveness.is_live_out("header", v("s1"))
        # The parameter is live throughout the loop.
        assert liveness.is_live_in("header", v("n"))
        assert liveness.is_live_out("body", v("n"))
        # Nothing is live out of the exit block.
        assert not any(liveness.is_live_out("exit", var) for var in function.variables())

    def test_branch_condition_live_at_exit_copy_point(self):
        """Figure 1: the branch's use keeps ``u`` live past the copy point."""
        function = figure1_branch_use()
        liveness = LivenessSets(function)
        block = function.blocks["B2"]
        from repro.ir.positions import exit_pcopy_index

        assert liveness.is_live_after("B2", exit_pcopy_index(block), v("u"))
        assert not liveness.is_live_after("B2", terminator_index(block), v("u"))

    def test_is_live_after_respects_later_definition(self):
        function = loop_function()
        liveness = LivenessSets(function)
        # s2 is defined in 'body' at index 2; before that point it is not live.
        assert not liveness.is_live_after("body", 0, v("s2"))
        assert liveness.is_live_after("body", 2, v("s2"))

    def test_incremental_hooks(self):
        function = diamond_function()
        liveness = LivenessSets(function)
        liveness.add_live_through("left", v("ghost"))
        assert liveness.is_live_in("left", v("ghost"))
        assert liveness.is_live_out("left", v("ghost"))

    def test_footprints(self):
        function = loop_function()
        liveness = LivenessSets(function)
        assert liveness.footprint_bytes() > 0
        assert liveness.evaluated_bitset_footprint(32) == 4 * len(function.blocks) * 2
        assert liveness.evaluated_ordered_footprint() == liveness.footprint_bytes()


class TestBitLivenessSets:
    @pytest.mark.parametrize("maker", [loop_function, diamond_function,
                                       figure1_branch_use, figure3_swap_problem,
                                       figure4_lost_copy_problem])
    def test_matches_ordered_sets(self, maker):
        function = maker()
        sets = LivenessSets(function)
        bits = BitLivenessSets(function)
        for block in function.blocks:
            for var in function.variables():
                assert sets.is_live_in(block, var) == bits.is_live_in(block, var), (block, var)
                assert sets.is_live_out(block, var) == bits.is_live_out(block, var), (block, var)

    def test_loop_liveness_semantics(self):
        function = loop_function()
        liveness = BitLivenessSets(function)
        # φ-results are not live-in of their own block.
        assert not liveness.is_live_in("header", v("i1"))
        # φ-arguments are live-out of the predecessor they flow from.
        assert liveness.is_live_out("entry", v("i0"))
        assert liveness.is_live_out("body", v("i2"))
        assert liveness.is_live_in("header", v("n"))
        assert not any(liveness.is_live_out("exit", var) for var in function.variables())

    def test_unknown_variable_is_not_live(self):
        function = loop_function()
        liveness = BitLivenessSets(function)
        assert not liveness.is_live_in("header", v("nosuchvar"))
        assert not liveness.is_live_out("header", v("nosuchvar"))

    def test_row_decoding(self):
        function = loop_function()
        sets = LivenessSets(function)
        bits = BitLivenessSets(function)
        for block in function.blocks:
            assert set(bits.live_in_variables(block)) == set(sets.live_in[block])
            assert set(bits.live_out_variables(block)) == set(sets.live_out[block])

    def test_incremental_hooks_grow_the_universe(self):
        function = diamond_function()
        liveness = BitLivenessSets(function)
        ghost = v("ghost")   # not part of the function: numbering must grow
        assert ghost not in liveness.numbering
        liveness.add_live_through("left", ghost)
        assert liveness.is_live_in("left", ghost)
        assert liveness.is_live_out("left", ghost)
        liveness.add_live_out("entry", ghost)
        liveness.add_live_in("join", ghost)
        assert liveness.is_live_out("entry", ghost)
        assert liveness.is_live_in("join", ghost)
        # Existing rows grew to the new universe without losing members.
        assert liveness.live_in["left"].universe == len(liveness.numbering)

    def test_measured_footprint_realises_the_bitset_formula(self):
        function = loop_function()
        liveness = BitLivenessSets(function)
        universe = len(liveness.numbering)
        blocks = len(function.blocks)
        assert liveness.footprint_bytes() == ((universe + 7) // 8) * blocks * 2
        assert liveness.evaluated_bitset_footprint(universe) == liveness.footprint_bytes()


class TestVariableNumbering:
    def test_stable_dense_indices(self):
        from repro.liveness.numbering import VariableNumbering

        numbering = VariableNumbering([v("a"), v("b"), v("a")])
        assert len(numbering) == 2
        assert numbering.index_of(v("a")) == 0
        assert numbering.ensure(v("c")) == 2          # append-only growth
        assert numbering.ensure(v("b")) == 1          # idempotent
        assert numbering.get(v("zz")) is None
        assert numbering.variable(2) == v("c")
        assert list(numbering) == [v("a"), v("b"), v("c")]

    def test_of_function_covers_all_variables(self):
        from repro.liveness.numbering import VariableNumbering

        function = loop_function()
        numbering = VariableNumbering.of_function(function)
        for var in function.variables():
            assert var in numbering


class TestLivenessChecker:
    @pytest.mark.parametrize("maker", [loop_function, diamond_function,
                                       figure1_branch_use, figure3_swap_problem,
                                       figure4_lost_copy_problem])
    def test_matches_dataflow_sets(self, maker):
        function = maker()
        sets = LivenessSets(function)
        checker = LivenessChecker(function)
        for block in function.blocks:
            for var in function.variables():
                assert sets.is_live_in(block, var) == checker.is_live_in(block, var), (block, var)
                assert sets.is_live_out(block, var) == checker.is_live_out(block, var), (block, var)

    def test_matches_dataflow_on_generated_programs(self):
        for function in generated_programs(count=4, size=30):
            sets = LivenessSets(function)
            checker = LivenessChecker(function)
            for block in function.blocks:
                for var in function.variables():
                    assert sets.is_live_in(block, var) == checker.is_live_in(block, var)
                    assert sets.is_live_out(block, var) == checker.is_live_out(block, var)

    def test_reachability(self):
        function = loop_function()
        checker = LivenessChecker(function)
        assert checker.reaches("entry", "exit")
        assert checker.reaches("body", "header")
        assert not checker.reaches("exit", "entry")

    def test_cfg_only_footprint(self):
        function = loop_function()
        checker = LivenessChecker(function)
        blocks = len(function.blocks)
        assert checker.footprint_bytes() == ((blocks + 7) // 8) * blocks * 2


class TestIntersection:
    def test_lost_copy_interferences(self):
        function = figure4_lost_copy_problem()
        liveness = LivenessSets(function)
        oracle = IntersectionOracle(function, liveness)
        assert oracle.intersect(v("x2"), v("x3"))       # the copy that must remain
        assert not oracle.intersect(v("x1"), v("x3"))
        assert oracle.intersect(v("x2"), v("x2"))

    def test_swap_interferences(self):
        function = figure3_swap_problem()
        liveness = LivenessSets(function)
        oracle = IntersectionOracle(function, liveness)
        assert oracle.intersect(v("a"), v("b"))
        assert oracle.intersect(v("a0"), v("b0"))

    def test_undefined_variable_does_not_intersect(self):
        function = loop_function()
        oracle = IntersectionOracle(function, LivenessSets(function))
        assert not oracle.intersect(v("nonexistent"), v("i1"))

    def test_convenience_wrapper(self):
        function = figure4_lost_copy_problem()
        assert live_ranges_intersect(function, v("x2"), v("x3"))

    def test_dominance_order_key_sorts_by_definition(self):
        function = loop_function()
        oracle = IntersectionOracle(function, LivenessSets(function))
        ordered = sorted(
            [v("s2"), v("i0"), v("i1"), v("n")], key=oracle.dominance_order_key
        )
        assert ordered[0] == v("n")          # parameter: defined before everything
        assert ordered[1] == v("i0")
        assert ordered[-1] == v("s2")

    def test_query_counter(self):
        function = loop_function()
        oracle = IntersectionOracle(function, LivenessSets(function))
        oracle.intersect(v("i0"), v("i1"))
        oracle.intersect(v("i1"), v("s1"))
        assert oracle.query_count == 2
