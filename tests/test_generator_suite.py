"""Tests for the workload generator, the synthetic suite and the metrics."""

import pytest

from repro.bench.generator import GeneratorConfig, generate_program, generate_ssa_program
from repro.bench.metrics import CopyCounts, copy_counts
from repro.bench.suite import SUITE, build_benchmark, build_suite, spec_by_name
from repro.interp import run_function
from repro.ir.printer import format_function
from repro.ir.validate import validate_function, validate_ssa
from repro.ssa.cssa import is_conventional


class TestGenerator:
    def test_deterministic_per_seed(self):
        config = GeneratorConfig(seed=42, size=30)
        first = format_function(generate_ssa_program(config))
        second = format_function(generate_ssa_program(config))
        assert first == second

    def test_different_seeds_differ(self):
        one = format_function(generate_ssa_program(GeneratorConfig(seed=1, size=30)))
        two = format_function(generate_ssa_program(GeneratorConfig(seed=2, size=30)))
        assert one != two

    def test_non_ssa_output_is_structurally_valid_and_runs(self):
        config = GeneratorConfig(seed=7, size=30)
        function = generate_program(config)
        validate_function(function)
        result = run_function(function, [1, 2])
        assert result.steps > 0
        assert result.trace  # epilogue always prints

    def test_ssa_output_is_valid_ssa(self):
        for seed in range(5):
            function = generate_ssa_program(GeneratorConfig(seed=seed, size=30))
            validate_ssa(function)

    def test_ssa_programs_are_usually_not_conventional(self):
        non_conventional = 0
        for seed in range(6):
            function = generate_ssa_program(GeneratorConfig(seed=seed, size=35))
            if not is_conventional(function):
                non_conventional += 1
        assert non_conventional >= 4

    def test_size_knob_scales_the_program(self):
        small = generate_ssa_program(GeneratorConfig(seed=3, size=15))
        large = generate_ssa_program(GeneratorConfig(seed=3, size=70))
        assert len(large.blocks) > len(small.blocks)

    def test_abi_knob_adds_pinned_variables(self):
        function = generate_ssa_program(
            GeneratorConfig(seed=11, size=40, call_probability=0.3, apply_abi=True)
        )
        assert function.pinned

    def test_br_dec_can_be_disabled(self):
        from repro.ir.instructions import BrDec

        function = generate_ssa_program(
            GeneratorConfig(seed=5, size=45, use_br_dec=False)
        )
        assert not any(isinstance(block.terminator, BrDec) for block in function)

    def test_interpretation_terminates(self):
        for seed in (0, 9, 17):
            function = generate_ssa_program(GeneratorConfig(seed=seed, size=40))
            for args in ([0, 0], [3, 9]):
                result = run_function(function, args)
                assert result.steps < 100_000


class TestSuite:
    def test_eleven_benchmarks_matching_the_paper(self):
        names = [spec.name for spec in SUITE]
        assert len(names) == 11
        assert names[0] == "164.gzip" and names[-1] == "300.twolf"
        assert "252.eon" not in names       # excluded in the paper as well

    def test_spec_lookup(self):
        assert spec_by_name("176.gcc").functions >= 5
        with pytest.raises(KeyError):
            spec_by_name("999.nothing")

    def test_build_benchmark_scales(self):
        spec = spec_by_name("181.mcf")
        functions = build_benchmark(spec, scale=0.5)
        assert len(functions) == max(1, round(spec.functions * 0.5))
        for function in functions:
            validate_ssa(function)

    def test_build_suite_subset(self):
        suite = build_suite(scale=0.25, benchmarks=["164.gzip", "181.mcf"])
        assert set(suite) == {"164.gzip", "181.mcf"}
        assert all(functions for functions in suite.values())


class TestMetrics:
    def test_copy_counts(self):
        from repro.ir.builder import FunctionBuilder

        fb = FunctionBuilder("counts", params=("p",))
        entry = fb.block("entry")
        with fb.at(entry):
            fb.copy("a", "p")
            fb.copy("b", 3)
            fb.parallel_copy(("c", "a"), ("d", 4))
            fb.ret("c")
        counts = copy_counts(fb.finish())
        assert counts.static_copies == 2        # a = p and c = a
        assert counts.constant_moves == 2       # b = 3 and d = 4
        assert counts.weighted_copies > 0

    def test_copy_counts_addition(self):
        total = CopyCounts(1, 2, 3.0) + CopyCounts(4, 5, 6.0)
        assert (total.static_copies, total.constant_moves, total.weighted_copies) == (5, 7, 9.0)
