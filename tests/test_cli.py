"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.ir import format_function
from repro.gallery import figure4_lost_copy_problem


@pytest.fixture()
def lost_copy_file(tmp_path):
    path = tmp_path / "lost_copy.ir"
    path.write_text(format_function(figure4_lost_copy_problem()))
    return str(path)


@pytest.fixture()
def non_ssa_file(tmp_path):
    path = tmp_path / "source.ir"
    path.write_text(
        "function accumulate(n) {\n"
        "  entry:\n"
        "    s = const 0\n"
        "    i = const 0\n"
        "    jump header\n"
        "  header:\n"
        "    c = cmp_lt i, n\n"
        "    br c, body, done\n"
        "  body:\n"
        "    s = add s, i\n"
        "    t = copy s\n"
        "    i = add i, 1\n"
        "    jump header\n"
        "  done:\n"
        "    print t\n"
        "    ret s\n"
        "}\n"
    )
    return str(path)


class TestTranslate:
    def test_translate_ssa_file(self, lost_copy_file, capsys):
        assert main(["translate", lost_copy_file, "--stats"]) == 0
        captured = capsys.readouterr()
        assert "phi" not in captured.out
        assert "copies remaining" in captured.err

    def test_translate_with_variant(self, lost_copy_file, capsys):
        assert main(["translate", lost_copy_file, "--variant", "intersect"]) == 0
        assert "phi" not in capsys.readouterr().out

    @pytest.mark.parametrize("backend", ["sets", "bitsets", "check", "incremental"])
    def test_translate_with_liveness_backend(self, lost_copy_file, capsys, backend):
        assert main([
            "translate", lost_copy_file, "--engine", "us_i", "--liveness", backend, "--stats",
        ]) == 0
        captured = capsys.readouterr()
        assert "phi" not in captured.out
        assert "engine" in captured.err

    def test_translate_non_ssa_with_pipeline(self, non_ssa_file, capsys):
        assert main([
            "translate", non_ssa_file, "--construct-ssa", "--optimize", "--abi", "--stats",
        ]) == 0
        captured = capsys.readouterr()
        assert "phi" not in captured.out
        assert "engine" in captured.err

    def test_unknown_engine_is_a_clean_system_exit(self, lost_copy_file):
        with pytest.raises(SystemExit, match="unknown engine 'bogus'"):
            main(["translate", lost_copy_file, "--engine", "bogus"])

    def test_unknown_variant_is_a_clean_system_exit(self, lost_copy_file):
        with pytest.raises(SystemExit, match="unknown coalescing variant 'bogus'"):
            main(["translate", lost_copy_file, "--variant", "bogus"])

    def test_unknown_liveness_is_a_clean_system_exit(self, lost_copy_file):
        with pytest.raises(SystemExit, match="unknown liveness backend 'bogus'"):
            main(["translate", lost_copy_file, "--liveness", "bogus"])


class TestRunAndBenchAndList:
    def test_run(self, lost_copy_file, capsys):
        assert main(["run", lost_copy_file, "--args", "5"]) == 0
        captured = capsys.readouterr()
        assert "return: 4" in captured.out
        assert "trace : 4" in captured.out

    def test_run_without_args(self, tmp_path, capsys):
        path = tmp_path / "noargs.ir"
        path.write_text("function f() {\n  entry:\n    print 7\n    ret 7\n}\n")
        assert main(["run", str(path)]) == 0
        assert "return: 7" in capsys.readouterr().out

    def test_bench_figure5(self, capsys):
        assert main(["bench", "--figure", "5", "--scale", "0.2", "--benchmarks", "181.mcf"]) == 0
        out = capsys.readouterr().out
        assert "Intersect" in out and "sum" in out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "us_i_linear_intercheck_livecheck" in out
        assert "sharing" in out
        assert "164.gzip" in out

    def test_list_includes_liveness_backends(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "liveness backends" in out
        for backend in ("sets", "bitsets", "check", "incremental"):
            assert backend in out

    def test_unknown_benchmark_is_a_clean_system_exit(self):
        with pytest.raises(SystemExit, match="unknown benchmark"):
            main(["bench", "--figure", "5", "--benchmarks", "nope"])


class TestShippedExample:
    def test_readme_quickstart_file_translates(self, capsys):
        """The file the README quickstart names must exist and translate."""
        import os

        path = os.path.join(
            os.path.dirname(__file__), "..", "examples", "lost_copy.ir"
        )
        assert main(["translate", path, "--liveness", "incremental"]) == 0
        assert "phi" not in capsys.readouterr().out


class TestStress:
    def test_stress_prints_the_table(self, capsys):
        assert main(["stress", "--blocks", "80,120", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "cold rpo (ms)" in out and "speedup" in out

    def test_stress_writes_output_file(self, tmp_path, capsys):
        path = tmp_path / "stress.txt"
        assert main([
            "stress", "--blocks", "80", "--repeats", "1", "--output", str(path),
        ]) == 0
        capsys.readouterr()
        assert "incremental (ms)" in path.read_text()

    def test_stress_rejects_bad_blocks(self):
        with pytest.raises(SystemExit, match="invalid --blocks"):
            main(["stress", "--blocks", "abc"])


class TestListJson:
    def test_list_json_is_machine_readable(self, capsys):
        import json

        assert main(["list", "--json"]) == 0
        catalogue = json.loads(capsys.readouterr().out)
        engines = {engine["name"]: engine for engine in catalogue["engines"]}
        assert "us_i_linear_intercheck_livecheck" in engines
        us_i = engines["us_i"]
        # The negotiation fields clients key caches on.
        assert us_i["liveness"] == "bitsets"
        assert us_i["interference"] == "matrix"
        assert len(us_i["fingerprint"]) == 16
        fingerprints = {engine["fingerprint"] for engine in engines.values()}
        assert len(fingerprints) == len(engines)
        assert set(catalogue["interference_backends"]) == {"matrix", "query", "incremental"}
        assert set(catalogue["liveness_backends"]) == {"sets", "bitsets", "check", "incremental"}


class TestServiceCommands:
    def test_bench_serve_prints_and_writes_the_table(self, tmp_path, capsys):
        path = tmp_path / "serve.txt"
        assert main([
            "bench-serve", "--blocks", "150", "--functions", "2", "--repeat", "3",
            "--shards", "2", "--scale", "1.0", "--output", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "cold" in out and "warm" in out and "sharded[2;thread]" in out
        assert "hit rate" in path.read_text()

    def test_bench_serve_rejects_unknown_engine(self):
        with pytest.raises(SystemExit, match="unknown engine"):
            main(["bench-serve", "--engine", "bogus", "--blocks", "80"])

    def test_serve_rejects_unknown_engine(self):
        with pytest.raises(SystemExit, match="unknown engine"):
            main(["serve", "--engine", "bogus"])

    def test_request_drives_a_live_daemon(self, lost_copy_file, capsys):
        from repro.service.server import TranslationServer

        server = TranslationServer(engine="us_i", shards=1)
        server.serve_in_background()
        try:
            port = str(server.port)
            assert main(["request", "ping", "--port", port]) == 0
            assert "repro-serve" in capsys.readouterr().out

            assert main(["request", "translate", lost_copy_file, "--port", port]) == 0
            captured = capsys.readouterr()
            assert "phi" not in captured.out
            assert "cold" in captured.err

            assert main(["request", "translate", lost_copy_file, "--port", port]) == 0
            assert "cache hit" in capsys.readouterr().err

            assert main(["request", "stats", "--port", port]) == 0
            assert '"requests"' in capsys.readouterr().out

            assert main(["request", "flush", "--port", port]) == 0
            assert "flushed" in capsys.readouterr().out
        finally:
            server.shutdown()
            server.server_close()

    def test_request_translate_needs_a_file(self):
        with pytest.raises(SystemExit, match="needs at least one IR file"):
            main(["request", "translate", "--port", "1"])

    def test_request_reports_connection_failure_cleanly(self):
        with pytest.raises(SystemExit, match="repro request"):
            main(["request", "ping", "--port", "1", "--timeout", "0.2"])


class TestInterferenceFlag:
    def test_translate_with_each_interference_backend(self, lost_copy_file, capsys):
        outputs = []
        for backend in ("matrix", "query", "incremental"):
            assert main([
                "translate", lost_copy_file, "--engine", "us_i",
                "--interference", backend,
            ]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1] == outputs[2]

    def test_translate_rejects_unknown_interference(self, lost_copy_file, capsys):
        with pytest.raises(SystemExit):
            main(["translate", lost_copy_file, "--interference", "bogus"])

    def test_list_shows_interference_backends(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "interference backends (--interference):" in out
        for backend in ("matrix", "query", "incremental"):
            assert backend in out

    def test_stress_interference_experiment(self, capsys):
        assert main([
            "stress", "--blocks", "80", "--repeats", "1",
            "--experiment", "interference",
        ]) == 0
        out = capsys.readouterr().out
        assert "incremental (ms)" in out and "matrix (KiB)" in out

    def test_stress_both_experiments(self, capsys):
        assert main([
            "stress", "--blocks", "80", "--repeats", "1", "--experiment", "both",
            "--irreducible", "0.4",
        ]) == 0
        out = capsys.readouterr().out
        assert "cold rpo (ms)" in out and "matrix (KiB)" in out
