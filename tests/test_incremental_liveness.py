"""Unit tests: edit logs, the incremental re-solver, and its pipeline wiring."""

import pytest

from repro.bench.suite import build_suite
from repro.ir.editlog import EditLog
from repro.ir.instructions import Copy, Variable
from repro.liveness.bitsets import BitLivenessSets
from repro.liveness.incremental import IncrementalBitLiveness
from repro.liveness.numbering import VariableNumbering
from repro.outofssa.config import EngineConfig, engine_by_name
from repro.outofssa.method_i import insert_phi_copies
from repro.pipeline import Pipeline
from repro.pipeline.analysis import AnalysisCache, StaleAnalysisError

from tests.helpers import diamond_function, loop_function


def assert_rows_match_cold(live, function):
    cold = BitLivenessSets(function)
    for label in function.blocks:
        assert set(live.live_in_variables(label)) == set(
            cold.live_in_variables(label)
        ), f"live-in mismatch at {label}"
        assert set(live.live_out_variables(label)) == set(
            cold.live_out_variables(label)
        ), f"live-out mismatch at {label}"


INCREMENTAL = EngineConfig.builder("us_i").liveness("incremental").build()


# --------------------------------------------------------------------------- edit log
class TestEditLog:
    def test_collects_blocks_and_variables(self):
        log = EditLog()
        a, b = Variable("a"), Variable("b")
        log.copy_inserted("entry", a, b)
        log.block_split("entry", "join", "entry_join.1")
        log.block_rewritten("join", [b])
        assert log.touched_blocks() == {"entry", "join", "entry_join.1"}
        assert log.affected_variables() == [a, b]
        assert log.new_blocks == ["entry_join.1"]
        assert len(log) == 3 and bool(log)

    def test_removed_classification(self):
        log = EditLog()
        a, b, fresh = Variable("a"), Variable("b"), Variable("fresh")
        # An inserted copy: the source only gains a use, the destination
        # gains a kill point (conservatively removed-from).
        log.copy_inserted("entry", fresh, a)
        assert log.removed_variables() == [fresh]
        # A rename removes every occurrence of the old name.
        log.variables_renamed({a: b})
        assert log.removed_variables() == [fresh, a]

    def test_empty_log_is_falsy(self):
        log = EditLog()
        assert not log and len(log) == 0
        assert log.touched_blocks() == set()


# --------------------------------------------------------------------------- re-solver
class TestIncrementalResolve:
    def test_empty_log_is_a_noop(self):
        function = loop_function()
        live = IncrementalBitLiveness(function)
        before = {label: live.live_in[label].bits for label in function.blocks}
        delta = live.apply_edits(EditLog())
        assert delta.iterations == 0 and delta.rows_changed == 0
        assert {label: live.live_in[label].bits for label in function.blocks} == before

    def test_manual_copy_insertion(self):
        function = loop_function()
        live = IncrementalBitLiveness(function)
        log = EditLog()
        body = function.blocks["body"]
        fresh = function.new_variable("patch")
        src = body.body[0].defs()[0]
        body.body.insert(1, Copy(fresh, src))
        log.copy_inserted("body", fresh, src)
        live.apply_edits(log)
        assert_rows_match_cold(live, function)

    def test_manual_edge_split(self):
        function = diamond_function()
        live = IncrementalBitLiveness(function)
        log = EditLog()
        new_block = function.split_edge("entry", "left")
        log.block_split("entry", "left", new_block.label)
        live.apply_edits(log)
        assert_rows_match_cold(live, function)

    def test_manual_rename(self):
        function = loop_function()
        live = IncrementalBitLiveness(function)
        old = next(var for var in function.variables() if var.name == "s2")
        new = function.new_variable("renamed")
        mapping = {old: new}
        log = EditLog()
        for label, block in function.blocks.items():
            changed = False
            for instruction in block.instructions():
                if old in instruction.uses() or old in instruction.defs():
                    instruction.replace_uses(mapping)
                    instruction.replace_defs(mapping)
                    changed = True
            if changed:
                log.block_rewritten(label, [old, new])
        log.variables_renamed(mapping)
        live.apply_edits(log)
        assert_rows_match_cold(live, function)
        # The old name is gone from every row.
        for label in function.blocks:
            assert old not in set(live.live_in_variables(label))
            assert old not in set(live.live_out_variables(label))

    def test_isolation_edit_log_patch(self):
        for functions in build_suite(scale=0.3, benchmarks=["164.gzip"]).values():
            for function in functions:
                live = IncrementalBitLiveness(function)
                insertion = insert_phi_copies(function)
                delta = live.apply_edits(insertion.edit_log())
                assert delta.edits == len(insertion.edit_log().edits) or delta.edits > 0
                assert_rows_match_cold(live, function)

    def test_views_share_one_universe_after_edits(self):
        """Patched and untouched rows alike must track the grown universe
        (BitSet equality and footprint accounting are universe-sensitive)."""
        function = loop_function()
        live = IncrementalBitLiveness(function)
        log = EditLog()
        body = function.blocks["body"]
        fresh = function.new_variable("patch")
        src = body.body[0].defs()[0]
        body.body.insert(1, Copy(fresh, src))
        log.copy_inserted("body", fresh, src)
        live.apply_edits(log)
        universes = {row.universe for row in live.live_in.values()}
        universes |= {row.universe for row in live.live_out.values()}
        assert universes == {len(live.numbering)}
        cold = BitLivenessSets(function)
        assert live.footprint_bytes() == cold.footprint_bytes()

    def test_derived_queries_refresh_after_edits(self):
        function = loop_function()
        live = IncrementalBitLiveness(function)
        log = EditLog()
        body = function.blocks["body"]
        fresh = function.new_variable("patch")
        src = body.body[0].defs()[0]
        body.body.append(Copy(fresh, src))
        log.copy_inserted("body", fresh, src)
        live.apply_edits(log)
        # The new copy's definition point is visible without a manual refresh.
        assert live.definition_of(fresh) is not None
        assert live.definition_of(fresh).block == "body"


# --------------------------------------------------------------------------- pipeline wiring
class TestPipelineWiring:
    def test_engine_output_identical_to_bitsets(self):
        suite = build_suite(scale=0.3, benchmarks=["176.gcc"])
        from repro.ir.printer import format_function

        bitset_engine = EngineConfig.builder("us_i").liveness("bitsets").build()
        for functions in suite.values():
            for function in functions:
                a, b = function.copy(), function.copy()
                Pipeline.for_engine(INCREMENTAL).run(a)
                Pipeline.for_engine(bitset_engine).run(b)
                assert format_function(a) == format_function(b)

    def test_warm_cache_is_patched_not_recomputed(self):
        function = build_suite(scale=0.3, benchmarks=["164.gzip"])["164.gzip"][0]
        cache = AnalysisCache(function, INCREMENTAL)
        live = cache.get(IncrementalBitLiveness)
        Pipeline.for_engine(INCREMENTAL).run(function, cache=cache)
        # Same instance, still cached, exactly one construction; patched by
        # both the isolation and the materialization pass.
        assert cache.cached(IncrementalBitLiveness) is live
        assert cache.constructions[IncrementalBitLiveness] == 1
        assert cache.constructions[VariableNumbering] == 1
        assert live.resolve_count == 2
        # The patched rows describe the *materialized* function.
        assert_rows_match_cold(live, function)

    def test_builder_and_engine_name_accept_incremental(self):
        config = EngineConfig.builder("us_iii").liveness("incremental").build()
        assert config.liveness == "incremental"
        with pytest.raises(ValueError):
            EngineConfig.builder().liveness("nonsense")
        # Unmodified engines are untouched by the new backend.
        assert engine_by_name("us_i").liveness == "bitsets"


# --------------------------------------------------------------------------- generation guard
class TestGenerationGuard:
    def test_undeclared_mutation_raises(self):
        function = diamond_function()
        cache = AnalysisCache(function)
        cache.get(BitLivenessSets)
        function.split_edge("entry", "left")  # mutate without invalidating
        with pytest.raises(StaleAnalysisError):
            cache.get(BitLivenessSets)

    def test_cached_is_the_unchecked_escape_hatch(self):
        function = diamond_function()
        cache = AnalysisCache(function)
        live = cache.get(BitLivenessSets)
        function.split_edge("entry", "left")
        assert cache.cached(BitLivenessSets) is live

    def test_preserve_vouches_and_restamps(self):
        function = diamond_function()
        cache = AnalysisCache(function)
        numbering = cache.get(VariableNumbering)
        function.split_edge("entry", "left")
        cache.preserve(VariableNumbering)
        assert cache.get(VariableNumbering) is numbering

    def test_invalidate_clears_the_stamp(self):
        function = diamond_function()
        cache = AnalysisCache(function)
        cache.get(BitLivenessSets)
        function.split_edge("entry", "left")
        cache.invalidate(BitLivenessSets, VariableNumbering)
        # A rebuild at the current generation serves cleanly.
        rebuilt = cache.get(BitLivenessSets)
        assert rebuilt is cache.get(BitLivenessSets)

    def test_generation_advances_on_cfg_edits(self):
        function = diamond_function()
        before = function.generation
        function.split_edge("entry", "left")
        assert function.generation > before

    def test_read_only_validation_does_not_invalidate(self):
        from repro.ir.validate import validate_function

        function = diamond_function()
        cache = AnalysisCache(function)
        live = cache.get(BitLivenessSets)
        validate_function(function)  # read-only: must not look like a mutation
        assert cache.get(BitLivenessSets) is live


# --------------------------------------------------------------------------- livecheck invalidation
class TestLiveCheckInvalidation:
    """``LivenessChecker.apply_edits``: patch the per-variable answer caches
    from edit logs instead of rebuilding the oracle (ROADMAP follow-up)."""

    def _checker(self, function):
        from repro.liveness.livecheck import LivenessChecker

        return LivenessChecker(function)

    def _assert_matches_fresh(self, checker, function):
        from repro.liveness.livecheck import LivenessChecker

        fresh = LivenessChecker(function)
        for label in function.blocks:
            for var in function.variables():
                assert checker.is_live_in(label, var) == fresh.is_live_in(label, var), (
                    f"live-in mismatch for {var} at {label}"
                )
                assert checker.is_live_out(label, var) == fresh.is_live_out(label, var), (
                    f"live-out mismatch for {var} at {label}"
                )

    def test_patched_checker_matches_fresh_after_edit_batches(self):
        from repro.bench.corpus import CorpusSpec, generate_stress_cfg, random_edit_batch

        for seed in (0, 7, 23):
            function = generate_stress_cfg(CorpusSpec(seed=seed, blocks=40, variables=6))
            checker = self._checker(function)
            # Warm the per-variable caches before editing.
            for var in function.variables():
                checker.is_live_in(function.entry_label, var)
            for batch in range(3):
                log = random_edit_batch(function, seed=seed ^ (batch + 1))
                checker.apply_edits(log)
                self._assert_matches_fresh(checker, function)

    def test_unaffected_cached_walks_survive(self):
        function = loop_function()
        checker = self._checker(function)
        for var in function.variables():
            checker.is_live_in(function.entry_label, var)
        cached_before = set(checker._live_in_blocks)
        target = function.variables()[0]
        log = EditLog()
        fresh = function.new_variable("patch")
        block = next(iter(function.blocks))
        function.blocks[block].body.insert(0, Copy(fresh, target))
        log.copy_inserted(block, fresh, target)
        checker.apply_edits(log)
        # Only the two variables the edit mentions were dropped.
        assert cached_before - set(checker._live_in_blocks) <= {target, fresh}
        assert len(cached_before) - len(set(checker._live_in_blocks) & cached_before) <= 1
        self._assert_matches_fresh(checker, function)

    def test_split_edges_rebuild_reachability_and_drop_crossing_walks(self):
        function = diamond_function()
        checker = self._checker(function)
        for var in function.variables():
            checker.is_live_out(function.entry_label, var)
        log = EditLog()
        new_block = function.split_edge("entry", "left")
        log.block_split("entry", "left", new_block.label)
        checker.apply_edits(log)
        assert new_block.label in checker._labels
        self._assert_matches_fresh(checker, function)

    def test_pipeline_patches_the_checker_through_materialization(self):
        from repro.liveness.livecheck import LivenessChecker

        config = engine_by_name("us_iii_intercheck_livecheck")
        function = build_suite(scale=0.3, benchmarks=["164.gzip"])["164.gzip"][0]
        cache = AnalysisCache(function, config)
        Pipeline.for_engine(config).run(function, cache=cache)
        # Built once (by the interference pass) and patched — not rebuilt —
        # by the materialization pass.
        assert cache.constructions[LivenessChecker] == 1
        checker = cache.cached(LivenessChecker)
        assert checker is not None
        self._assert_matches_fresh(checker, function)


# --------------------------------------------------------------------------- incremental interference wiring
class TestIncrementalInterferenceWiring:
    def test_incremental_backend_cached_and_patched_through_materialization(self):
        from repro.interference.graph import IncrementalMatrixInterference, MatrixInterference
        from repro.liveness.intersection import IntersectionOracle

        config = (
            EngineConfig.builder("us_i")
            .liveness("incremental")
            .interference("incremental")
            .build()
        )
        function = build_suite(scale=0.3, benchmarks=["164.gzip"])["164.gzip"][0]
        cache = AnalysisCache(function, config)
        Pipeline.for_engine(config).run(function, cache=cache)
        backend = cache.cached(IncrementalMatrixInterference)
        assert backend is not None
        assert cache.constructions[IncrementalMatrixInterference] == 1
        assert cache.constructions[VariableNumbering] == 1
        assert backend.resolve_count == 1     # patched by materialization
        # The patched matrix describes the *materialized* function: a cold
        # rebuild over the same universe ordering is bit-identical.
        cold = MatrixInterference(
            function,
            IntersectionOracle(function, BitLivenessSets(function)),
            backend.kind,
            backend.values,
            universe=backend.graph.variables(),
        )
        assert backend.graph.row_bits() == cold.graph.row_bits()

    def test_all_engines_bit_identical_under_incremental_backend(self):
        from repro.ir.printer import format_function

        suite = build_suite(scale=0.3, benchmarks=["181.mcf"])
        for base in ("us_i", "us_iii", "sreedhar_iii"):
            config = engine_by_name(base)
            derived = EngineConfig.builder(config).interference("incremental").build()
            for functions in suite.values():
                for function in functions:
                    a, b = function.copy(), function.copy()
                    Pipeline.for_engine(config).run(a)
                    Pipeline.for_engine(derived).run(b)
                    assert format_function(a) == format_function(b)
