"""Unit tests for the translation service layer (cache, scheduler, daemon)."""

import threading

import pytest

from repro.bench.corpus import CorpusSpec, generate_stress_cfg, random_edit_batch
from repro.bench.generator import GeneratorConfig, generate_ssa_program
from repro.coalescing.engine import AggressiveCoalescer, collect_affinities
from repro.interference.base import InterferenceKind
from repro.interference.congruence import CongruenceClasses
from repro.interference.graph import MatrixInterference
from repro.ir import format_function, parse_function, text_digest
from repro.liveness.bitsets import BitLivenessSets
from repro.liveness.intersection import IntersectionOracle
from repro.outofssa.config import ENGINE_CONFIGURATIONS, EngineConfig, engine_by_name
from repro.outofssa.method_i import insert_phi_copies
from repro.pipeline import Pipeline, Session
from repro.service import (
    CachedTranslation,
    ServiceClient,
    ServiceError,
    ShardedScheduler,
    TranslationCache,
    TranslationServer,
    TranslationService,
    parallel_coalesce,
    shard_of,
)


def program_text(seed: int, size: int = 24) -> str:
    return format_function(generate_ssa_program(GeneratorConfig(seed=seed, size=size)))


def entry_for(digest: str, fingerprint: str = "fp") -> CachedTranslation:
    return CachedTranslation(
        digest=digest, fingerprint=fingerprint, engine_name="us_i",
        ir_text="function f() {\n  entry:\n    ret\n}\n", seconds=0.1,
    )


# --------------------------------------------------------------------------- fingerprints
class TestEngineFingerprint:
    def test_stable_across_instances(self):
        assert engine_by_name("us_i").fingerprint() == engine_by_name("us_i").fingerprint()

    def test_distinct_across_all_named_engines(self):
        fingerprints = {config.fingerprint() for config in ENGINE_CONFIGURATIONS}
        assert len(fingerprints) == len(ENGINE_CONFIGURATIONS)

    def test_name_and_label_are_cosmetic(self):
        renamed = EngineConfig.builder("us_i").name("renamed").label("Renamed").build()
        assert renamed.fingerprint() == engine_by_name("us_i").fingerprint()

    def test_every_knob_feeds_the_fingerprint(self):
        base = engine_by_name("us_i")
        variants = [
            EngineConfig.builder(base).coalescing("intersect").build(),
            EngineConfig.builder(base).liveness("sets").build(),
            EngineConfig.builder(base).interference("query").build(),
            EngineConfig.builder(base).linear_class_check(True).build(),
            EngineConfig.builder(base).on_branch_def("error").build(),
        ]
        fingerprints = {base.fingerprint()} | {v.fingerprint() for v in variants}
        assert len(fingerprints) == len(variants) + 1


# --------------------------------------------------------------------------- the cache
class TestTranslationCache:
    def test_hit_miss_accounting(self):
        cache = TranslationCache(capacity=4)
        assert cache.lookup("d1", "fp") is None
        cache.store(entry_for("d1"))
        entry = cache.lookup("d1", "fp")
        assert entry is not None and entry.hits == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)
        assert 0 < stats.hit_rate < 1

    def test_lru_eviction_order(self):
        cache = TranslationCache(capacity=2)
        cache.store(entry_for("d1"))
        cache.store(entry_for("d2"))
        cache.lookup("d1", "fp")          # d1 becomes most-recently-used
        cache.store(entry_for("d3"))      # evicts d2, not d1
        assert ("d1", "fp") in cache and ("d3", "fp") in cache
        assert ("d2", "fp") not in cache
        assert cache.stats().evictions == 1

    def test_capacity_zero_disables_caching(self):
        cache = TranslationCache(capacity=0)
        cache.store(entry_for("d1"))
        assert cache.lookup("d1", "fp") is None
        assert len(cache) == 0

    def test_flush_drops_everything(self):
        cache = TranslationCache(capacity=4)
        cache.store(entry_for("d1"))
        cache.store(entry_for("d2"))
        assert cache.flush() == 2
        assert len(cache) == 0 and cache.stats().flushes == 1

    def test_eviction_releases_the_warm_session_state(self):
        service = TranslationService("us_i", capacity=1)
        first = service.translate_text(program_text(1))
        session = service.sessions()[first.fingerprint]
        assert len(session._warm_caches) == 1
        service.translate_text(program_text(2))  # evicts the first entry
        assert len(session._warm_caches) == 1    # old function was forgotten

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            TranslationCache(capacity=-1)


# --------------------------------------------------------------------------- warm sessions
class TestWarmSession:
    def test_warm_session_reuses_the_analysis_cache(self):
        session = Session("us_i", warm=True)
        function = parse_function(program_text(3))
        session.translate(function)
        cache = session.warm_cache(function)
        assert cache is not None
        session.translate(function)  # re-translation of the same (hot) object
        assert session.warm_reuses == 1
        assert session.warm_cache(function) is cache

    def test_cold_session_retains_nothing(self):
        session = Session("us_i")
        function = parse_function(program_text(3))
        session.translate(function)
        assert session.warm_cache(function) is None

    def test_apply_edits_requires_a_warm_cache(self):
        session = Session("us_i", warm=True)
        function = parse_function(program_text(3))
        with pytest.raises(KeyError, match="no warm analysis cache"):
            session.apply_edits(function, None)

    def test_forget_and_flush_warm(self):
        session = Session("us_i", warm=True)
        functions = [parse_function(program_text(seed)) for seed in (1, 2)]
        session.translate_many(functions)
        assert session.forget(functions[0]) is True
        assert session.forget(functions[0]) is False
        assert session.flush_warm() == 1


# --------------------------------------------------------------------------- the service worker
class TestTranslationService:
    def test_miss_then_hit(self):
        service = TranslationService("us_i")
        text = program_text(4)
        cold = service.translate_text(text)
        hit = service.translate_text(text)
        assert cold.kind == "cold" and hit.kind == "hit"
        assert cold.ir_text == hit.ir_text
        assert hit.translate_seconds == cold.seconds

    def test_fingerprint_separates_engines_digest_separates_programs(self):
        service = TranslationService("us_i")
        text = program_text(4)
        a = service.translate_text(text)
        b = service.translate_text(text, engine="us_iii")
        c = service.translate_text(program_text(5))
        assert a.digest == b.digest and a.fingerprint != b.fingerprint
        assert a.digest != c.digest
        assert b.kind == "cold" and c.kind == "cold"

    def test_equivalent_config_under_another_name_hits(self):
        service = TranslationService("us_i")
        text = program_text(4)
        service.translate_text(text)
        renamed = EngineConfig.builder("us_i").name("renamed").build()
        assert service.translate_text(text, engine=renamed).kind == "hit"

    def test_translate_function_does_not_mutate_the_argument(self):
        service = TranslationService("us_i")
        function = parse_function(program_text(6))
        before = format_function(function)
        result = service.translate_function(function)
        assert format_function(function) == before
        assert result.digest == text_digest(before)

    def test_retranslate_without_warm_state_raises(self):
        service = TranslationService("us_i")
        with pytest.raises(KeyError, match="no warm state"):
            service.retranslate("0" * 64, None)

    def test_retranslate_is_bit_identical_to_cold(self):
        config = (
            EngineConfig.builder("us_i")
            .liveness("incremental").interference("incremental").build()
        )
        service = TranslationService(config)
        function = generate_stress_cfg(CorpusSpec(seed=11, blocks=90, variables=6))
        first = service.translate_function(function)
        state = service.cache.warm_state(first.digest, first.fingerprint)
        log = random_edit_batch(state.function, seed=2)
        cold_copy = state.function.copy()      # preserves fresh-name counters
        warm = service.retranslate(first.digest, log)
        Session(config).translate(cold_copy)
        assert warm.kind == "warm"
        assert warm.ir_text == format_function(cold_copy)
        # The edited program is cached under its own digest now.
        assert service.translate_text(warm.ir_text, engine=config).digest != first.digest

    def test_flush_resets_cache_and_sessions(self):
        service = TranslationService("us_i")
        service.translate_text(program_text(4))
        assert service.flush() == 1
        assert service.translate_text(program_text(4)).kind == "cold"

    def test_stats_payload_shape(self):
        service = TranslationService("us_i")
        service.translate_text(program_text(4))
        payload = service.stats_payload()
        assert payload["requests"] == 1
        assert payload["engine"] == "us_i"
        assert payload["cache"]["entries"] == 1

    def test_cache_disabled_service_retains_no_warm_state(self):
        """With caching off the eviction hook never runs, so nothing may be
        retained per request — a long-lived cold daemon must not grow."""
        service = TranslationService("us_i", capacity=0)
        for seed in range(5):
            service.translate_text(program_text(seed, size=16))
        for session in service.sessions().values():
            assert len(session._warm_caches) == 0
        assert service.cache.stats().warm_states == 0

    def test_keep_warm_state_false_retains_nothing(self):
        service = TranslationService("us_i", keep_warm_state=False)
        service.translate_text(program_text(1))
        for session in service.sessions().values():
            assert len(session._warm_caches) == 0

    def test_hit_stats_are_caller_owned_copies(self):
        service = TranslationService("us_i")
        text = program_text(4)
        service.translate_text(text)
        first_hit = service.translate_text(text)
        first_hit.stats["corrupted"] = True
        second_hit = service.translate_text(text)
        assert "corrupted" not in second_hit.stats

    def test_retranslate_moves_warm_state_off_the_old_digest(self):
        """After a retranslation the old key's result stays servable but its
        warm state is gone: evicting the old entry must not break the new
        key's warm path, and re-editing from the old digest fails loudly
        instead of silently stacking edits."""
        config = (
            EngineConfig.builder("us_i")
            .liveness("incremental").interference("incremental").build()
        )
        service = TranslationService(config, capacity=2)
        function = generate_stress_cfg(CorpusSpec(seed=13, blocks=80, variables=6))
        first = service.translate_function(function)
        state = service.cache.warm_state(first.digest, first.fingerprint)
        log = random_edit_batch(state.function, seed=5)
        warm = service.retranslate(first.digest, log)

        assert service.cache.warm_state(first.digest, first.fingerprint) is None
        # (An empty log suffices: random_edit_batch would mutate the live
        # function even though the call is expected to be refused.)
        from repro.ir.editlog import EditLog

        with pytest.raises(KeyError, match="no warm state"):
            service.retranslate(first.digest, EditLog())

        # Evict the old entry (capacity 2: old digest is LRU) and confirm the
        # new digest's warm path survived the eviction.
        service.translate_text(program_text(42))
        state2 = service.cache.warm_state(warm.digest, warm.fingerprint)
        assert state2 is not None
        log2 = random_edit_batch(state2.function, seed=7)
        cold_copy = state2.function.copy()
        warm2 = service.retranslate(warm.digest, log2)
        Session(config).translate(cold_copy)
        assert warm2.ir_text == format_function(cold_copy)


# --------------------------------------------------------------------------- parallel coalescing
def _matrix_classes(function):
    oracle = IntersectionOracle(function, BitLivenessSets(function))
    backend = MatrixInterference(function, oracle, InterferenceKind.INTERSECT)
    return CongruenceClasses(backend, use_linear_check=False)


class TestParallelCoalesce:
    @pytest.mark.parametrize(
        "seed, abi", [(3, False), (19, False), (57, False), (19, True)]
    )
    def test_matches_serial_sweep_exactly(self, seed, abi):
        build = lambda: generate_ssa_program(
            GeneratorConfig(seed=seed, size=34, apply_abi=abi)
        )
        serial_fn, parallel_fn = build(), build()
        for function in (serial_fn, parallel_fn):
            insert_phi_copies(function)

        serial_classes = _matrix_classes(serial_fn)
        serial_stats = AggressiveCoalescer(serial_classes).run(
            collect_affinities(serial_fn)
        )
        parallel_classes = _matrix_classes(parallel_fn)
        parallel_stats = parallel_coalesce(
            parallel_classes, collect_affinities(parallel_fn), workers=4, chunk=4
        )

        assert parallel_stats.coalesced == serial_stats.coalesced
        assert parallel_stats.attempted == serial_stats.attempted
        # Counter parity too: every prefiltered mask rejection replaces
        # exactly one serial class-row check, and register conflicts bypass
        # the row counters on both paths.
        assert parallel_stats.class_row_checks == serial_stats.class_row_checks
        assert parallel_stats.pair_queries == serial_stats.pair_queries
        assert [a.key() for a in parallel_stats.remaining_affinities] == [
            a.key() for a in serial_stats.remaining_affinities
        ]
        serial_sets = sorted(
            tuple(sorted(str(v) for v in cls)) for cls in serial_classes.classes()
        )
        parallel_sets = sorted(
            tuple(sorted(str(v) for v in cls)) for cls in parallel_classes.classes()
        )
        assert serial_sets == parallel_sets

    def test_falls_back_without_class_rows(self):
        function = generate_ssa_program(GeneratorConfig(seed=3, size=20))
        insert_phi_copies(function)
        from repro.interference.base import QueryInterference
        from repro.liveness.dataflow import LivenessSets

        oracle = IntersectionOracle(function, LivenessSets(function))
        classes = CongruenceClasses(
            QueryInterference(function, oracle, InterferenceKind.INTERSECT),
            use_linear_check=False,
        )
        stats = parallel_coalesce(classes, collect_affinities(function), workers=4)
        assert stats.prefiltered == 0  # the serial fallback ran


# --------------------------------------------------------------------------- the scheduler
class TestShardedScheduler:
    def test_digest_affinity_is_stable(self):
        digest = text_digest(program_text(1))
        assert shard_of(digest, 4) == shard_of(digest, 4)
        assert shard_of(digest, 1) == 0

    def test_modes_agree_and_warm_up(self):
        texts = [program_text(seed, size=18) for seed in range(4)] * 2
        outputs = {}
        for mode in ("serial", "thread"):
            scheduler = ShardedScheduler("us_i", shards=2, mode=mode)
            results = scheduler.translate_batch(texts)
            outputs[mode] = [result.ir_text for result in results]
            payload = scheduler.stats_payload()
            assert payload["requests"] == len(texts)
            assert payload["hits"] == 4  # each program repeats exactly once
        assert outputs["serial"] == outputs["thread"]

    def test_process_mode_translates_cold_and_adopts_warm(self):
        texts = [program_text(seed, size=18) for seed in range(3)]
        scheduler = ShardedScheduler("us_i", shards=2, mode="process")
        first = scheduler.translate_batch(texts)
        assert all(not result.cached for result in first)
        second = scheduler.translate_batch(texts)
        assert all(result.cached for result in second)
        assert [r.ir_text for r in first] == [r.ir_text for r in second]

    def test_process_mode_dedups_duplicate_cold_texts(self):
        """A repeat-heavy cold batch ships one worker translation per unique
        program; every duplicate index is fanned the same answer (with its
        own caller-owned stats dict)."""
        texts = [program_text(seed, size=18) for seed in (1, 2)] * 3
        scheduler = ShardedScheduler("us_i", shards=2, mode="process")
        results = scheduler.translate_batch(texts)
        assert len(results) == 6
        assert results[0].ir_text == results[2].ir_text == results[4].ir_text
        assert results[1].ir_text == results[3].ir_text == results[5].ir_text
        results[0].stats["corrupted"] = True
        assert "corrupted" not in results[2].stats
        # One cache entry per unique program, not per occurrence.
        assert sum(len(s.cache) for s in scheduler.services) == 2

    def test_single_requests_route_by_digest(self):
        scheduler = ShardedScheduler("us_i", shards=3, mode="thread")
        text = program_text(7)
        result = scheduler.translate(text)
        assert result.shard == shard_of(text_digest(text), 3)
        assert scheduler.translate(text).cached

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError, match="unknown scheduler mode"):
            ShardedScheduler("us_i", mode="bogus")
        with pytest.raises(ValueError, match="shards"):
            ShardedScheduler("us_i", shards=0)

    def test_flush_counts_across_shards(self):
        scheduler = ShardedScheduler("us_i", shards=2, mode="serial")
        scheduler.translate_batch([program_text(seed, size=18) for seed in range(3)])
        assert scheduler.flush() == 3


# --------------------------------------------------------------------------- daemon + client
@pytest.fixture()
def server():
    server = TranslationServer(engine="us_i", shards=2)
    server.serve_in_background()
    yield server
    server.shutdown()
    server.server_close()


class TestServerAndClient:
    def test_ping_reports_the_banner(self, server):
        with ServiceClient(port=server.port) as client:
            payload = client.ping()
            assert payload["service"].startswith("repro-serve/")
            assert payload["engine"] == "us_i" and payload["shards"] == 2

    def test_translate_roundtrip_and_cache(self, server):
        text = program_text(9)
        reference = parse_function(text)
        Pipeline.for_engine("us_i").run(reference)
        with ServiceClient(port=server.port) as client:
            first = client.translate(text)
            assert first["ir"] == format_function(reference)
            assert first["cached"] is False
            assert client.translate(text)["cached"] is True

    def test_engine_override_and_unknown_engine(self, server):
        text = program_text(9)
        with ServiceClient(port=server.port) as client:
            assert client.translate(text, engine="us_iii")["engine"] == "us_iii"
            with pytest.raises(ServiceError, match="unknown engine"):
                client.translate(text, engine="bogus")

    def test_batch_stats_flush(self, server):
        texts = [program_text(seed, size=18) for seed in (1, 2, 1)]
        with ServiceClient(port=server.port) as client:
            results = client.translate_batch(texts)
            assert len(results) == 3
            assert results[0]["ir"] == results[2]["ir"]
            stats = client.stats()
            assert stats["stats"]["requests"] >= 3
            assert client.flush() >= 2

    def test_malformed_inputs_do_not_kill_the_connection(self, server):
        with ServiceClient(port=server.port) as client:
            bad_ir = client.request("translate", ir="not ir at all")
            assert bad_ir["ok"] is False and "error" in bad_ir
            unknown = client.request("frobnicate")
            assert unknown["ok"] is False
            assert client.ping()["ok"] is True  # still alive afterwards

    def test_two_clients_share_the_warm_cache(self, server):
        text = program_text(11)
        with ServiceClient(port=server.port) as first:
            first.translate(text)
        with ServiceClient(port=server.port) as second:
            assert second.translate(text)["cached"] is True

    def test_shutdown_verb_stops_the_server(self):
        server = TranslationServer(engine="us_i", shards=1)
        thread = server.serve_in_background()
        with ServiceClient(port=server.port) as client:
            assert client.shutdown()["stopping"] is True
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        server.server_close()

    def test_concurrent_clients(self, server):
        texts = [program_text(seed, size=16) for seed in range(4)]
        errors = []

        def drive(text):
            try:
                with ServiceClient(port=server.port) as client:
                    first = client.translate(text)
                    second = client.translate(text)
                    assert first["ir"] == second["ir"]
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        threads = [threading.Thread(target=drive, args=(text,)) for text in texts]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
