"""Tests for the parallel-copy sequentialization (paper Algorithm 1)."""

import itertools

import pytest

from repro.ir.instructions import Constant, Copy, Variable
from repro.outofssa.parallel_copy import (
    emitted_copy_count,
    sequentialize_instruction,
    sequentialize_parallel_copy,
)
from repro.ir.instructions import ParallelCopy


def v(name: str) -> Variable:
    return Variable(name)


def make_fresh_factory():
    counter = itertools.count()

    def fresh() -> Variable:
        return Variable(f"temp{next(counter)}")

    return fresh


def simulate_parallel(pairs, env):
    """Reference semantics: read all sources, then write all destinations."""
    read = {dst: (src.value if isinstance(src, Constant) else env[src]) for dst, src in pairs}
    result = dict(env)
    result.update(read)
    return result


def simulate_sequential(copies, env):
    result = dict(env)
    for copy in copies:
        value = copy.src.value if isinstance(copy.src, Constant) else result[copy.src]
        result[copy.dst] = value
    return result


def check_equivalent(pairs, variables=None):
    """The emitted sequence must compute exactly the parallel semantics."""
    variables = variables or sorted({var.name for _, src in pairs if isinstance(src, Variable) for var in [src]}
                                    | {dst.name for dst, _ in pairs})
    env = {v(name): index + 1 for index, name in enumerate(sorted(variables))}
    copies = sequentialize_parallel_copy(pairs, make_fresh_factory())
    expected = simulate_parallel(pairs, env)
    actual = simulate_sequential(copies, env)
    for dst, _ in pairs:
        assert actual[dst] == expected[dst], (pairs, copies)
    # Variables that are not destinations keep their original values.
    for name in variables:
        if v(name) not in {dst for dst, _ in pairs}:
            assert actual[v(name)] == env[v(name)]
    return copies


class TestSequentialization:
    def test_tree_copies_need_no_extra(self):
        copies = check_equivalent([(v("b"), v("a")), (v("c"), v("a"))])
        assert len(copies) == 2
        assert all(not copy.dst.name.startswith("temp") for copy in copies)

    def test_swap_uses_one_temporary(self):
        copies = check_equivalent([(v("a"), v("b")), (v("b"), v("a"))])
        assert len(copies) == 3
        assert sum(copy.dst.name.startswith("temp") for copy in copies) == 1

    def test_three_cycle(self):
        copies = check_equivalent([(v("a"), v("b")), (v("b"), v("c")), (v("c"), v("a"))])
        assert len(copies) == 4

    def test_paper_example_cycle_with_tree_edge(self):
        """(a->b, b->c, c->a, c->d): the duplication into d saves the extra copy."""
        pairs = [(v("b"), v("a")), (v("c"), v("b")), (v("a"), v("c")), (v("d"), v("c"))]
        copies = check_equivalent(pairs)
        assert len(copies) == 4          # no temporary needed
        assert not any(copy.dst.name.startswith("temp") for copy in copies)

    def test_self_copy_dropped(self):
        copies = sequentialize_parallel_copy([(v("a"), v("a"))], make_fresh_factory())
        assert copies == []

    def test_constant_sources(self):
        pairs = [(v("a"), Constant(5)), (v("b"), v("a"))]
        copies = check_equivalent(pairs, variables=["a", "b"])
        # b must receive a's *old* value before a is overwritten by 5.
        assert copies[0].dst == v("b")
        assert len(copies) == 2

    def test_duplicate_destination_rejected(self):
        with pytest.raises(ValueError):
            sequentialize_parallel_copy(
                [(v("a"), v("b")), (v("a"), v("c"))], make_fresh_factory()
            )

    def test_empty(self):
        assert sequentialize_parallel_copy([], make_fresh_factory()) == []

    def test_instruction_wrapper_and_count(self):
        pcopy = ParallelCopy([(v("x"), v("y")), (v("y"), v("x"))])
        copies = sequentialize_instruction(pcopy, make_fresh_factory())
        assert len(copies) == 3
        assert emitted_copy_count(pcopy.pairs, make_fresh_factory()) == 3

    def test_two_independent_cycles(self):
        pairs = [
            (v("a"), v("b")), (v("b"), v("a")),
            (v("c"), v("d")), (v("d"), v("c")),
        ]
        copies = check_equivalent(pairs)
        assert len(copies) == 6
        assert sum(copy.dst.name.startswith("temp") for copy in copies) == 2

    def test_long_chain(self):
        pairs = [(v(f"x{i}"), v(f"x{i+1}")) for i in range(6)]
        copies = check_equivalent(pairs)
        assert len(copies) == 6

    def test_rotation_with_duplication(self):
        """A cycle where one vertex is also duplicated: still no temporary."""
        pairs = [(v("a"), v("b")), (v("b"), v("a")), (v("c"), v("a"))]
        copies = check_equivalent(pairs)
        assert len(copies) == 3
        assert not any(copy.dst.name.startswith("temp") for copy in copies)

    def test_minimality_against_brute_force_on_permutations(self):
        """For pure permutations of up to 5 variables the copy count is
        ``n - #fixed_points + #non_trivial_cycles`` (one temp copy per cycle)."""
        names = ["a", "b", "c", "d", "e"]
        for permutation in itertools.permutations(range(5)):
            pairs = [
                (v(names[i]), v(names[p])) for i, p in enumerate(permutation) if i != p
            ]
            copies = check_equivalent(pairs, variables=names)
            moved = [i for i, p in enumerate(permutation) if i != p]
            # count cycles among moved elements
            seen = set()
            cycles = 0
            for start in moved:
                if start in seen:
                    continue
                cycles += 1
                current = start
                while current not in seen:
                    seen.add(current)
                    current = permutation[current]
            assert len(copies) == len(moved) + cycles
