"""Unit tests for the small data structures in ``repro.utils``."""

import pytest

from repro.utils.bitset import BitMatrix, BitSet
from repro.utils.instrument import AllocationTracker, current_tracker, track_allocations
from repro.utils.orderedset import OrderedSet
from repro.utils.unionfind import UnionFind


class TestOrderedSet:
    def test_preserves_insertion_order(self):
        items = OrderedSet(["c", "a", "b", "a"])
        assert list(items) == ["c", "a", "b"]

    def test_membership_and_len(self):
        items = OrderedSet([1, 2, 3])
        assert 2 in items
        assert 5 not in items
        assert len(items) == 3
        assert bool(items)
        assert not OrderedSet()

    def test_add_discard_remove(self):
        items = OrderedSet([1])
        items.add(2)
        items.discard(3)  # absent: no error
        items.remove(1)
        with pytest.raises(KeyError):
            items.remove(1)
        assert list(items) == [2]

    def test_set_algebra(self):
        left = OrderedSet([1, 2, 3])
        right = OrderedSet([3, 4])
        assert list(left.union(right)) == [1, 2, 3, 4]
        assert list(left.intersection(right)) == [3]
        assert list(left.difference(right)) == [1, 2]
        assert left.isdisjoint(OrderedSet([9]))
        assert OrderedSet([1, 2]).issubset(left)
        assert (left | right) == {1, 2, 3, 4}
        assert (left & right) == {3}
        assert (left - right) == {1, 2}

    def test_equality_with_plain_sets(self):
        assert OrderedSet([1, 2]) == {2, 1}
        assert OrderedSet([1, 2]) != {1}

    def test_update_and_difference_update(self):
        items = OrderedSet([1])
        items.update([2, 3])
        items.difference_update([1, 3])
        assert list(items) == [2]

    def test_footprint(self):
        assert OrderedSet([1, 2, 3]).footprint_bytes() == 24


class TestBitSet:
    def test_add_contains_iter(self):
        bits = BitSet(10, [1, 3, 7])
        assert 3 in bits
        assert 4 not in bits
        assert list(bits) == [1, 3, 7]
        assert len(bits) == 3

    def test_out_of_range(self):
        bits = BitSet(4)
        with pytest.raises(IndexError):
            bits.add(4)
        assert 17 not in bits

    def test_algebra_and_union_update(self):
        a = BitSet(8, [1, 2])
        b = BitSet(8, [2, 3])
        assert list(a.union(b)) == [1, 2, 3]
        assert list(a.intersection(b)) == [2]
        assert list(a.difference(b)) == [1]
        assert not a.isdisjoint(b)
        changed = a.union_update(b)
        assert changed and 3 in a
        assert a.union_update(b) is False

    def test_footprint(self):
        assert BitSet(9).footprint_bytes() == 2
        assert BitSet(8).footprint_bytes() == 1

    def test_eq_requires_same_universe(self):
        """Regression: same bits over different universes must not be equal."""
        assert BitSet(4, [1]) != BitSet(8, [1])
        assert BitSet(8, [1]) == BitSet(8, [1])
        assert BitSet(8, [1]) != BitSet(8, [2])
        assert BitSet(4).__eq__(object()) is NotImplemented

    def test_discard_tolerates_out_of_universe(self):
        """Regression: discard follows set.discard (and __contains__), so
        out-of-universe items are a no-op, not an IndexError."""
        bits = BitSet(4, [1, 2])
        bits.discard(17)        # out of universe: no error, like `17 not in bits`
        bits.discard(-3)
        bits.discard(3)         # absent but in universe: no error
        bits.discard(2)
        assert list(bits) == [1]
        # add() keeps its strict contract.
        with pytest.raises(IndexError):
            bits.add(17)

    def test_remove_raises_for_missing_items(self):
        bits = BitSet(4, [1])
        bits.remove(1)
        with pytest.raises(KeyError):
            bits.remove(1)
        with pytest.raises(KeyError):
            bits.remove(17)

    def test_union_and_intersection_merge_universes(self):
        small = BitSet(4, [1, 3])
        large = BitSet(16, [3, 9])
        assert small.union(large).universe == 16
        assert list(small.union(large)) == [1, 3, 9]
        assert small.intersection(large).universe == 16
        assert list(small.intersection(large)) == [3]
        # In-place union grows the receiver's universe to cover the operand.
        assert small.union_update(large) is True
        assert small.universe == 16 and 9 in small

    def test_grow_and_from_bits(self):
        bits = BitSet(2, [1])
        bits.grow(8)
        bits.add(7)
        bits.grow(4)            # never shrinks
        assert bits.universe == 8 and list(bits) == [1, 7]
        assert list(BitSet.from_bits(4, 0b1010)) == [1, 3]
        with pytest.raises(ValueError):
            BitSet.from_bits(3, 0b1000)


class TestBitMatrix:
    def test_symmetric_set_and_test(self):
        matrix = BitMatrix(4)
        matrix.set(1, 3)
        assert matrix.test(3, 1)
        assert matrix.test(1, 3)
        assert not matrix.test(0, 2)
        matrix.clear(3, 1)
        assert not matrix.test(1, 3)

    def test_grows_on_demand(self):
        matrix = BitMatrix()
        matrix.set(5, 2)
        assert matrix.size == 6
        assert matrix.test(2, 5)

    def test_neighbours(self):
        matrix = BitMatrix(4)
        matrix.set(0, 2)
        matrix.set(2, 3)
        assert list(matrix.neighbours(2)) == [0, 3]

    def test_neighbours_matches_test_based_scan(self):
        """Regression: the word-scanning neighbours() must agree (bits and
        order) with the naive one-test-per-index definition."""
        import random

        rng = random.Random(7)
        matrix = BitMatrix(24)
        for _ in range(80):
            a, b = rng.randrange(24), rng.randrange(24)
            if a != b:
                matrix.set(a, b)
        for a in range(24):
            expected = [other for other in range(24) if other != a and matrix.test(a, other)]
            assert list(matrix.neighbours(a)) == expected

    def test_neighbours_out_of_range_is_empty(self):
        matrix = BitMatrix(4)
        matrix.set(1, 2)
        assert list(matrix.neighbours(7)) == []
        assert list(matrix.neighbours(-1)) == []

    def test_diagonal_is_not_a_neighbour(self):
        matrix = BitMatrix(4)
        matrix.set(2, 1)
        matrix._rows[2] |= 1 << 2  # force the diagonal bit
        assert list(matrix.neighbours(2)) == [1]

    def test_footprint_matches_paper_formula(self):
        assert BitMatrix.evaluated_footprint(16) == (16 // 8) * 16 // 2
        matrix = BitMatrix(16)
        assert matrix.footprint_bytes() == sum((i + 1 + 7) // 8 for i in range(16))
        assert matrix.peak_bytes == matrix.footprint_bytes()


class TestUnionFind:
    def test_union_and_find(self):
        uf = UnionFind(["a", "b", "c"])
        uf.union("a", "b")
        assert uf.same("a", "b")
        assert not uf.same("a", "c")
        assert uf.find("a") == uf.find("b")

    def test_groups(self):
        uf = UnionFind(range(5))
        uf.union(0, 1)
        uf.union(3, 4)
        groups = {frozenset(members) for members in uf.groups().values()}
        assert frozenset({0, 1}) in groups
        assert frozenset({3, 4}) in groups
        assert frozenset({2}) in groups

    def test_add_is_idempotent(self):
        uf = UnionFind()
        uf.add("x")
        uf.union("x", "x")
        uf.add("x")
        assert len(uf) == 1


class TestAllocationTracker:
    def test_allocate_free_peak(self):
        tracker = AllocationTracker()
        tracker.allocate("graph", 100)
        tracker.allocate("graph", 50)
        tracker.free("graph", 120)
        tracker.allocate("graph", 10)
        assert tracker.total() == 160
        assert tracker.peak() == 150
        assert tracker.by_category()["graph"]["total"] == 160

    def test_resize(self):
        tracker = AllocationTracker()
        tracker.resize("sets", 0, 40)
        tracker.resize("sets", 40, 16)
        assert tracker.total() == 40
        assert tracker.peak() == 40

    def test_context_manager_installs_tracker(self):
        assert current_tracker() is None
        with track_allocations() as tracker:
            assert current_tracker() is tracker
        assert current_tracker() is None

    def test_negative_amounts_ignored(self):
        tracker = AllocationTracker()
        tracker.allocate("x", 0)
        tracker.allocate("x", -5)
        tracker.free("x", -5)
        assert tracker.total() == 0
