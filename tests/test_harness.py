"""Tests for the experiment harness (Figures 5-7) and the memory model."""

import pytest

from repro.bench.harness import (
    headline_summary,
    run_figure5,
    run_figure6,
    run_figure7,
)
from repro.bench.memory import MemoryFootprint, category_breakdown, footprint_of
from repro.bench.reporting import format_figure5, format_figure6, format_figure7
from repro.bench.suite import build_suite
from repro.coalescing.variants import VARIANTS
from repro.outofssa.driver import ENGINE_CONFIGURATIONS, destruct_ssa, engine_by_name


@pytest.fixture(scope="module")
def tiny_suite():
    return build_suite(scale=0.25, benchmarks=["164.gzip", "181.mcf"])


class TestFigure5Harness:
    def test_rows_structure_and_ratios(self, tiny_suite):
        rows = run_figure5(tiny_suite)
        assert [row.benchmark for row in rows] == ["164.gzip", "181.mcf", "sum"]
        for row in rows:
            assert set(row.static_copies) == {variant.name for variant in VARIANTS}
            assert row.ratios["intersect"] == pytest.approx(1.0)
            for ratio in row.ratios.values():
                assert 0.0 <= ratio <= 1.0 + 1e-9

    def test_more_precise_interference_removes_more_copies(self, tiny_suite):
        sum_row = next(row for row in run_figure5(tiny_suite) if row.benchmark == "sum")
        copies = sum_row.static_copies
        assert copies["value"] <= copies["chaitin"] <= copies["intersect"]
        assert copies["sreedhar_i"] <= copies["intersect"]
        assert copies["value_is"] <= copies["value"]
        assert copies["sharing"] <= copies["value_is"]
        # The headline separation of Figure 5: the value-based strategies
        # remove strictly more copies than plain intersection.
        assert copies["value"] < copies["intersect"]

    def test_report_formatting(self, tiny_suite):
        text = format_figure5(run_figure5(tiny_suite))
        assert "Intersect" in text and "Sharing" in text and "sum" in text


class TestFigure6Harness:
    def test_rows_and_ratios(self, tiny_suite):
        rows = run_figure6(tiny_suite, engines=ENGINE_CONFIGURATIONS[:3])
        assert rows[-1].benchmark == "sum"
        for row in rows:
            assert row.ratios["sreedhar_iii"] == pytest.approx(1.0)
            assert all(seconds >= 0 for seconds in row.seconds.values())
        text = format_figure6(rows)
        assert "Sreedhar III" in text

    def test_fast_configuration_beats_the_baseline(self, tiny_suite):
        engines = [engine_by_name("sreedhar_iii"), engine_by_name("us_i_linear_intercheck_livecheck")]
        # min-of-3: the tiny suite runs in a few ms per engine, so a single
        # scheduler hiccup could otherwise flip the comparison.
        rows = run_figure6(tiny_suite, engines=engines, repeats=3)
        sum_row = next(row for row in rows if row.benchmark == "sum")
        assert sum_row.seconds["us_i_linear_intercheck_livecheck"] < sum_row.seconds["sreedhar_iii"]


class TestFigure7Harness:
    def test_memory_rows(self, tiny_suite):
        engines = [engine_by_name("sreedhar_iii"), engine_by_name("us_i_linear_intercheck_livecheck")]
        rows = run_figure7(tiny_suite, engines=engines)
        assert [row.metric for row in rows] == ["maximum", "total"]
        for row in rows:
            assert row.measured["sreedhar_iii"] > 0
        total_row = rows[1]
        # The headline claim: dropping the graph and the liveness sets shrinks
        # the footprint by a large factor.
        assert total_row.measured["us_i_linear_intercheck_livecheck"] * 4 < total_row.measured["sreedhar_iii"]
        text = format_figure7(rows)
        assert "maximum" in text and "total" in text

    def test_footprint_of_single_run(self):
        from repro.gallery import figure4_lost_copy_problem

        baseline = destruct_ssa(figure4_lost_copy_problem(), engine_by_name("sreedhar_iii"))
        fast = destruct_ssa(
            figure4_lost_copy_problem(), engine_by_name("us_i_linear_intercheck_livecheck")
        )
        baseline_footprint = footprint_of(baseline)
        fast_footprint = footprint_of(fast)
        assert baseline_footprint.measured_total > fast_footprint.measured_total
        assert baseline_footprint.evaluated_ordered_sets > 0
        assert baseline_footprint.evaluated_bit_sets > 0
        # The baseline engines now run on the bit-set liveness backend, whose
        # measured rows land in their own tracker category.
        assert "liveness_bitsets" in category_breakdown(baseline)
        assert "livecheck" in category_breakdown(fast)

    def test_memory_footprint_addition(self):
        total = MemoryFootprint(1, 2, 3, 4) + MemoryFootprint(10, 20, 30, 40)
        assert (total.measured_total, total.measured_peak) == (11, 22)
        assert (total.evaluated_ordered_sets, total.evaluated_bit_sets) == (33, 44)


class TestHeadline:
    def test_headline_summary_direction(self, tiny_suite):
        summary = headline_summary(tiny_suite)
        assert summary.speedup_vs_sreedhar > 1.0
        assert summary.memory_reduction_vs_sreedhar > 2.0
        assert summary.copies_ratio_vs_sreedhar <= 1.05
