"""Tests for structural and SSA validation."""

import pytest

from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.instructions import Copy, Op, Variable
from repro.ir.validate import (
    ValidationError,
    defined_variables,
    used_before_defined,
    validate_function,
    validate_ssa,
)
from tests.helpers import GALLERY_PROGRAMS, diamond_function, loop_function


class TestValidateFunction:
    def test_accepts_well_formed(self):
        validate_function(diamond_function())
        validate_function(loop_function())

    def test_empty_function_rejected(self):
        with pytest.raises(ValidationError, match="no blocks"):
            validate_function(Function("empty"))

    def test_missing_terminator(self):
        function = Function("f")
        function.add_block("entry")
        with pytest.raises(ValidationError, match="missing terminator"):
            validate_function(function)

    def test_unknown_branch_target(self):
        fb = FunctionBuilder("f")
        entry = fb.block("entry")
        with fb.at(entry):
            fb.jump("nowhere")
        with pytest.raises(ValidationError, match="unknown block"):
            validate_function(fb.finish())

    def test_phi_argument_mismatch(self):
        function = diamond_function()
        phi = function.blocks["join"].phis[0]
        del phi.args["right"]
        with pytest.raises(ValidationError, match="do not match predecessors"):
            validate_function(function)

    def test_phi_in_entry_rejected(self):
        fb = FunctionBuilder("f")
        entry = fb.block("entry")
        with fb.at(entry):
            fb.phi("x")
            fb.ret()
        with pytest.raises(ValidationError, match="no predecessors"):
            validate_function(fb.finish())

    def test_entry_with_predecessor_rejected(self):
        fb = FunctionBuilder("f")
        entry, other = fb.blocks("entry", "other")
        with fb.at(entry):
            fb.jump(other)
        with fb.at(other):
            fb.jump(entry)
        with pytest.raises(ValidationError, match="entry block"):
            validate_function(fb.finish())


class TestValidateSSA:
    @pytest.mark.parametrize("name,maker,_args", GALLERY_PROGRAMS)
    def test_gallery_is_ssa(self, name, maker, _args):
        validate_ssa(maker())

    def test_double_definition_rejected(self):
        function = diamond_function()
        function.blocks["left"].append(Op(Variable("a"), "const", [2]))
        with pytest.raises(ValidationError, match="definitions"):
            validate_ssa(function)

    def test_use_not_dominated_by_definition(self):
        fb = FunctionBuilder("f", params=("c",))
        entry, left, right, join = fb.blocks("entry", "left", "right", "join")
        with fb.at(entry):
            fb.branch("c", left, right)
        with fb.at(left):
            fb.const(1, name="x")
            fb.jump(join)
        with fb.at(right):
            fb.jump(join)
        with fb.at(join):
            fb.print("x")  # x only defined on the left path
            fb.ret("x")
        with pytest.raises(ValidationError, match="not dominated"):
            validate_ssa(fb.finish())

    def test_use_without_definition(self):
        fb = FunctionBuilder("f")
        entry = fb.block("entry")
        with fb.at(entry):
            fb.print("ghost")
            fb.ret()
        with pytest.raises(ValidationError, match="never defined"):
            validate_ssa(fb.finish())

    def test_brdec_counter_exception(self):
        from repro.gallery import figure2_branch_with_decrement

        function = figure2_branch_with_decrement()
        validate_ssa(function, allow_counter_redefinition=True)
        with pytest.raises(ValidationError):
            validate_ssa(function, allow_counter_redefinition=False)


class TestEdgeCases:
    """Degenerate shapes the validator must neither crash on nor misjudge."""

    def test_loop_phi_self_reference_is_valid(self):
        # i1 = phi(entry: i0, body: i2) where i2 is computed from i1 — the
        # back-edge makes this legal SSA, not a dominance violation.
        validate_ssa(loop_function())

    def test_phi_using_its_own_destination_rejected(self):
        function = loop_function()
        phi = function.blocks["header"].phis[0]
        # Point the back-edge argument at the phi's own destination: the
        # value would have to dominate its own definition.
        for label in phi.args:
            phi.args[label] = phi.dst
        # Destroy the original definition of the old argument so the only
        # remaining issue is the self-cycle.
        with pytest.raises(ValidationError):
            validate_ssa(function)

    def test_branch_to_self_is_structurally_valid(self):
        fb = FunctionBuilder("spin", params=("c",))
        entry, loop, out = fb.blocks("entry", "loop", "out")
        with fb.at(entry):
            fb.jump(loop)
        with fb.at(loop):
            fb.branch("c", loop, out)
        with fb.at(out):
            fb.ret()
        validate_function(fb.finish())

    def test_phi_on_self_loop_needs_own_block_as_predecessor(self):
        fb = FunctionBuilder("spin", params=("c",))
        entry, loop, out = fb.blocks("entry", "loop", "out")
        with fb.at(entry):
            fb.jump(loop)
        with fb.at(loop):
            x = fb.phi("x", entry=0)  # misses the self-edge "loop"
            fb.branch("c", loop, out)
        with fb.at(out):
            fb.ret(x)
        with pytest.raises(ValidationError, match="do not match predecessors"):
            validate_function(fb.finish())

    def test_empty_body_blocks_are_valid(self):
        fb = FunctionBuilder("empty_blocks")
        entry, mid, end = fb.blocks("entry", "mid", "end")
        with fb.at(entry):
            fb.jump(mid)
        with fb.at(mid):
            fb.jump(end)  # terminator only, no body
        with fb.at(end):
            fb.ret()
        function = fb.finish()
        validate_function(function)
        validate_ssa(function)

    def test_unreachable_block_use_does_not_raise(self):
        # Satellite: uses in unreachable blocks are a warning (V204), not a
        # dominance error — dominance is undefined off the reachable CFG.
        fb = FunctionBuilder("dead_code")
        entry, dead = fb.blocks("entry", "dead")
        with fb.at(entry):
            fb.ret()
        with fb.at(dead):
            fb.print("ghost")
            fb.ret()
        validate_ssa(fb.finish())  # must not raise

    def test_unreachable_block_use_reported_as_warning(self):
        from repro.verify.checks import check_ssa

        fb = FunctionBuilder("dead_code")
        entry, dead = fb.blocks("entry", "dead")
        with fb.at(entry):
            fb.ret()
        with fb.at(dead):
            fb.print("ghost")
            fb.ret()
        diags = check_ssa(fb.finish())
        assert [d.code for d in diags] == ["V204"]


class TestHelpers:
    def test_defined_and_undefined_variables(self):
        fb = FunctionBuilder("f", params=("p",))
        entry = fb.block("entry")
        with fb.at(entry):
            fb.copy("a", "p")
            fb.print("ghost")
            fb.ret("a")
        function = fb.finish()
        assert Variable("a") in defined_variables(function)
        assert used_before_defined(function) == {Variable("ghost")}
